//! Job specifications: what a client asks the runtime to solve, and how.
//!
//! A [`JobSpec`] is the unit of admission — problem, solver shape,
//! termination, execution mode, priority, and deadline, all expressible as
//! one JSON object on the wire. [`ProblemSpec::build`] is the single place
//! instances are materialized from a spec, shared by the server workers, the
//! CLI (which converts its flags into a `ProblemSpec`), and the offline
//! reference runs in the integration tests — so "the job the server ran" and
//! "the job the test reproduces" are the same model by construction.

use dabs_core::{DabsConfig, DabsSolver, Termination};
use dabs_model::{KernelChoice, QuboModel};
use dabs_problems::{gset, qaplib, QaspInstance, Topology};
use dabs_rng::{Rng64, Xorshift64Star};
use serde::json::Json;
use std::time::Duration;

/// Admission caps on untrusted job shape, enforced by [`JobSpec::validate`]
/// — the server path only; the CLI builds specs from its own flags and may
/// exceed these offline. They bound what one `submit` line can make a worker
/// do *before* the job's termination or stop flag is ever consulted: model
/// construction is not cancellable, so its cost (an O(n²) generator loop, a
/// `vec![0; n]` allocation sized by a client-declared header) must be capped
/// at admission or a single small request pins a worker — or aborts the
/// process — for every tenant.
pub const MAX_PROBLEM_N: usize = 4096;
/// QAP generators (`tai`/`nug`/`tho`) square their size into n² QUBO
/// variables, so their cap is the square root of the variable budget.
pub const MAX_QAP_SIZE: usize = 64;
/// Threaded mode spawns a devices × (blocks + 1) thread tree per job.
pub const MAX_DEVICES: usize = 32;
/// See [`MAX_DEVICES`].
pub const MAX_BLOCKS: usize = 32;

/// Which instance to solve. `kind` selects a generator family (the same set
/// the CLI exposes) or `"inline"`, in which case `inline` carries the model
/// in the repo's `.qubo` text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblemSpec {
    pub kind: String,
    /// Instance size; each generator has its own default.
    pub n: Option<usize>,
    /// Generator seed (ignored for `inline`).
    pub seed: u64,
    /// `.qubo` text for `kind == "inline"`.
    pub inline: Option<String>,
    /// Energy-kernel backend override (`auto` picks by density at model
    /// build; the wire spelling is `"kernel": "auto"|"csr"|"dense"`).
    pub kernel: KernelChoice,
}

impl ProblemSpec {
    /// A random dense QUBO — the workhorse for load generation and tests.
    pub fn random(n: usize, seed: u64) -> Self {
        Self {
            kind: "random".into(),
            n: Some(n),
            seed,
            inline: None,
            kernel: KernelChoice::Auto,
        }
    }

    /// Wrap a `.qubo` document.
    pub fn inline_text(text: impl Into<String>) -> Self {
        Self {
            kind: "inline".into(),
            n: None,
            seed: 0,
            inline: Some(text.into()),
            kernel: KernelChoice::Auto,
        }
    }

    /// Materialize the model plus a human-readable instance name.
    pub fn build(&self) -> Result<(QuboModel, String), String> {
        let (mut model, name) = self.build_instance()?;
        // Apply the spec's kernel override after construction so every
        // generator shares one selection path. `Auto` re-runs the same
        // density policy the builder already applied — a no-op.
        model.select_kernel(self.kernel);
        Ok((model, name))
    }

    fn build_instance(&self) -> Result<(QuboModel, String), String> {
        let seed = self.seed;
        match self.kind.as_str() {
            "inline" => {
                let text = self
                    .inline
                    .as_deref()
                    .ok_or("inline problem requires the \"inline\" field")?;
                let model = dabs_model::io::parse_qubo(text).map_err(|e| e.to_string())?;
                let name = format!("inline(n={})", model.n());
                Ok((model, name))
            }
            "k2000" => {
                let n = self.n.unwrap_or(200);
                let p = gset::k2000_like(n, seed);
                Ok((p.to_qubo(), p.name))
            }
            "g22" => {
                let n = self.n.unwrap_or(200);
                let m = (n * n) / 200; // matches G22's 1% density
                let p = gset::g22_like(n, m, seed);
                Ok((p.to_qubo(), p.name))
            }
            "g39" => {
                let n = self.n.unwrap_or(200);
                let m = (n * n * 6) / 2000;
                let p = gset::g39_like(n, m, seed);
                Ok((p.to_qubo(), p.name))
            }
            "tai" => {
                let n = self.n.unwrap_or(9);
                let q = qaplib::tai_like(n, seed);
                let pen = q.auto_penalty();
                let name = format!("{} (penalty {pen})", q.name);
                Ok((q.to_qubo(pen), name))
            }
            "nug" => {
                let n = self.n.unwrap_or(9);
                let side = (n as f64).sqrt().round() as usize;
                if side * side != n {
                    return Err(format!("nug requires a square n, got {n}"));
                }
                let q = qaplib::nug_like(side, side, seed);
                let pen = q.auto_penalty();
                let name = format!("{} (penalty {pen})", q.name);
                Ok((q.to_qubo(pen), name))
            }
            "tho" => {
                let n = self.n.unwrap_or(9);
                let side = (n as f64).sqrt().round() as usize;
                if side * side != n {
                    return Err(format!("tho requires a square n, got {n}"));
                }
                let q = qaplib::tho_like(side, side, seed);
                let pen = q.auto_penalty();
                let name = format!("{} (penalty {pen})", q.name);
                Ok((q.to_qubo(pen), name))
            }
            "qasp" => {
                let n = self.n.unwrap_or(512);
                // Chimera cell count that covers n before fault trimming
                let cells = ((n as f64 / 8.0).sqrt().ceil() as usize).max(2);
                let topo = Topology::pegasus_like(cells, cells, 14.0, seed);
                let target_edges = (n * 7).min(topo.edge_count());
                let topo = topo.with_faults(n.min(topo.n()), target_edges, seed);
                let inst = QaspInstance::generate(&topo, 16, seed);
                let name = inst.name.clone();
                Ok((inst.qubo().clone(), name))
            }
            "random" => {
                let n = self.n.unwrap_or(64);
                let mut rng = Xorshift64Star::new(seed);
                let mut b = dabs_model::QuboBuilder::new(n);
                for i in 0..n {
                    b.add_linear(i, rng.next_range_i64(-9, 9));
                    for j in (i + 1)..n {
                        if rng.next_bool(0.3) {
                            b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                        }
                    }
                }
                Ok((
                    b.build().map_err(|e| e.to_string())?,
                    format!("random(n={n})"),
                ))
            }
            other => Err(format!("unknown problem kind {other:?}")),
        }
    }

    /// Admission-time size check (see [`MAX_PROBLEM_N`]). For `inline`
    /// problems the *declared* variable count on the `p` header line is what
    /// gets allocated before any term is validated, so that is what must be
    /// bounded; a malformed header passes here and fails properly in
    /// [`ProblemSpec::build`].
    pub fn validate_size(&self) -> Result<(), String> {
        // `kernel:"dense"` on the wire commits a worker to an n²×8-byte
        // weight matrix regardless of instance sparsity, so it gets the
        // same ceiling the auto policy enforces (`DENSE_AUTO_MAX_N`).
        // Today that equals MAX_PROBLEM_N — every admissible instance is
        // already allowed to go dense via `Auto` (a tai-at-the-cap QAP
        // does exactly that) — but the explicit check stops a future raise
        // of MAX_PROBLEM_N from silently widening the dense memory bound.
        if self.kernel == KernelChoice::Dense {
            let declared = match self.kind.as_str() {
                "inline" => self.inline.as_deref().and_then(dabs_model::io::declared_n),
                "tai" | "nug" | "tho" => {
                    let size = self.n.unwrap_or(9);
                    Some(size * size)
                }
                _ => self.n,
            };
            if let Some(n) = declared {
                if n > dabs_model::DENSE_AUTO_MAX_N {
                    return Err(format!(
                        "kernel \"dense\" at {n} variables exceeds the dense admission cap {} \
                         (n² × 8 bytes of weights per job)",
                        dabs_model::DENSE_AUTO_MAX_N
                    ));
                }
            }
        }
        match self.kind.as_str() {
            "tai" | "nug" | "tho" => {
                let n = self.n.unwrap_or(9);
                if n > MAX_QAP_SIZE {
                    return Err(format!(
                        "{} size {n} exceeds the admission cap {MAX_QAP_SIZE} (n² variables)",
                        self.kind
                    ));
                }
            }
            "inline" => {
                if let Some(n) = self.inline.as_deref().and_then(dabs_model::io::declared_n) {
                    if n > MAX_PROBLEM_N {
                        return Err(format!(
                            "inline problem declares {n} variables, admission cap is {MAX_PROBLEM_N}"
                        ));
                    }
                }
            }
            _ => {
                // Every generator's default is far below the cap, so only an
                // explicit n can violate it (unknown kinds fail in build()).
                if let Some(n) = self.n {
                    if n > MAX_PROBLEM_N {
                        return Err(format!(
                            "problem size {n} exceeds the admission cap {MAX_PROBLEM_N}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(self.kind.clone())),
            ("n", self.n.map(|n| n as u64).into()),
            ("seed", Json::from(self.seed)),
            (
                "inline",
                self.inline.as_ref().map(|t| Json::str(t.clone())).into(),
            ),
            ("kernel", Json::str(self.kernel.name())),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(Self {
            kind: j
                .get_str("kind")
                .ok_or("problem needs a \"kind\"")?
                .to_string(),
            n: j.get_u64("n").map(|n| n as usize),
            seed: j.get_u64("seed").unwrap_or(1),
            inline: j.get_str("inline").map(String::from),
            kernel: match j.get_str("kernel") {
                Some(k) => KernelChoice::from_name(k)?,
                None => KernelChoice::Auto,
            },
        })
    }
}

/// How the job runs on its worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded deterministic run — same (problem, seed, batches)
    /// always yields the same energies; the right mode for reproducible
    /// tenants and for tests.
    #[default]
    Sequential,
    /// Full threaded solve (devices × blocks thread-tree) on the worker.
    Threaded,
}

impl ExecMode {
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Sequential => "sequential",
            ExecMode::Threaded => "threaded",
        }
    }

    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "sequential" => Ok(ExecMode::Sequential),
            "threaded" => Ok(ExecMode::Threaded),
            other => Err(format!("unknown mode {other:?}")),
        }
    }
}

/// Everything the runtime needs to admit, schedule, and execute one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub problem: ProblemSpec,
    /// Solver pools/devices (paper's island count).
    pub devices: usize,
    /// Block workers per device (threaded mode only).
    pub blocks: usize,
    /// Solver seed.
    pub seed: u64,
    /// Use the fixed-strategy ABS baseline preset instead of full DABS.
    pub abs: bool,
    pub mode: ExecMode,
    /// Stop at (≤) this energy.
    pub target: Option<i64>,
    /// Wall-clock budget, milliseconds.
    pub time_ms: Option<u64>,
    /// Batch budget (exact in sequential mode).
    pub max_batches: Option<u64>,
    /// Higher runs first; ties are FIFO.
    pub priority: i32,
    /// Absolute deadline, milliseconds since the unix epoch. A job whose
    /// deadline has passed is rejected at admission; one that expires while
    /// queued is dropped by the worker; a running job has its time budget
    /// clamped to the remaining window.
    pub deadline_unix_ms: Option<u64>,
    /// Explicit decomposition width: how many stealable units the scheduler
    /// splits this job into (sequential mode only). `None` lets the pool
    /// decide from the batch budget and worker count; capped at
    /// [`MAX_UNITS_PER_JOB`].
    pub units: Option<u32>,
    /// Bit-sliced batch width per device: `None`/0 runs the scalar
    /// strategies, a multiple of 64 in `[64, 256]` runs the bulk lockstep
    /// sweep with that many resident candidate lanes (a cube-seeded unit's
    /// warm start then fans out across the whole lane batch).
    pub lanes: Option<u32>,
    /// Which tenant this job bills against (admission rate limiting). A
    /// connection's `hello`-declared tenant fills this in when the spec
    /// leaves it unset; unset on an anonymous v1 connection means the
    /// default tenant bucket.
    pub tenant: Option<String>,
    /// Client-chosen idempotency key. A resubmit carrying a key the server
    /// has already admitted (within the retained-jobs window) returns the
    /// original job id — and its terminal result, if any — instead of
    /// admitting a second copy, which makes at-least-once submit retry safe
    /// across the durable job log's replay.
    pub idempotency_key: Option<String>,
}

/// Admission cap on a job's explicit unit count.
pub const MAX_UNITS_PER_JOB: u32 = 64;

/// Admission cap on the `tenant` field's length.
pub const MAX_TENANT_BYTES: usize = 64;

/// Admission cap on the `idempotency_key` field's length.
pub const MAX_IDEMPOTENCY_KEY_BYTES: usize = 128;

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            problem: ProblemSpec::random(32, 1),
            devices: 2,
            blocks: 1,
            seed: 1,
            abs: false,
            mode: ExecMode::Sequential,
            target: None,
            time_ms: None,
            max_batches: None,
            priority: 0,
            deadline_unix_ms: None,
            units: None,
            lanes: None,
            tenant: None,
            idempotency_key: None,
        }
    }
}

impl JobSpec {
    /// Admission-time validation: a job must be well-formed *and* bounded
    /// (external cancellation alone is not a termination a tenant can rely
    /// on — a forgotten client would park a worker forever).
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 || self.blocks == 0 {
            return Err("devices and blocks must be ≥ 1".into());
        }
        if self.devices > MAX_DEVICES || self.blocks > MAX_BLOCKS {
            return Err(format!(
                "devices ≤ {MAX_DEVICES} and blocks ≤ {MAX_BLOCKS} (admission caps)"
            ));
        }
        self.problem.validate_size()?;
        if self.target.is_none() && self.time_ms.is_none() && self.max_batches.is_none() {
            return Err("job needs a termination: target, time_ms, or max_batches".into());
        }
        if self.target.is_some() && self.time_ms.is_none() && self.max_batches.is_none() {
            return Err("a target-only job is unbounded; add time_ms or max_batches".into());
        }
        if let Some(u) = self.units {
            if u == 0 || u > MAX_UNITS_PER_JOB {
                return Err(format!("units must be in 1..={MAX_UNITS_PER_JOB}"));
            }
        }
        if let Some(l) = self.lanes {
            if l != 0 && !dabs_model::valid_lanes(l as usize) {
                return Err(format!(
                    "lanes {l} invalid (omit or 0 for scalar, or a multiple of 64 in [64, 256])"
                ));
            }
        }
        if let Some(t) = &self.tenant {
            if t.is_empty() || t.len() > MAX_TENANT_BYTES {
                return Err(format!("tenant must be 1..={MAX_TENANT_BYTES} bytes"));
            }
        }
        if let Some(k) = &self.idempotency_key {
            if k.is_empty() || k.len() > MAX_IDEMPOTENCY_KEY_BYTES {
                return Err(format!(
                    "idempotency_key must be 1..={MAX_IDEMPOTENCY_KEY_BYTES} bytes"
                ));
            }
        }
        Ok(())
    }

    /// Build the solver exactly as the CLI would for the same flags.
    pub fn build_solver(&self) -> Result<DabsSolver, String> {
        let mut cfg = if self.abs {
            DabsConfig::abs_baseline(self.devices, self.blocks)
        } else {
            DabsConfig::dabs(self.devices, self.blocks)
        };
        cfg.seed = self.seed;
        cfg.params.batch_lanes = self.lanes.unwrap_or(0);
        DabsSolver::new(cfg)
    }

    /// The job's own termination conditions (the runtime adds its stop flag
    /// and deadline clamp on top).
    pub fn termination(&self) -> Termination {
        let mut t = Termination::default();
        if let Some(e) = self.target {
            t = t.with_target(e);
        }
        if let Some(ms) = self.time_ms {
            t = t.with_time(Duration::from_millis(ms));
        }
        if let Some(b) = self.max_batches {
            t = t.with_batches(b);
        }
        t
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("problem", self.problem.to_json()),
            ("devices", Json::from(self.devices)),
            ("blocks", Json::from(self.blocks)),
            ("seed", Json::from(self.seed)),
            ("abs", Json::from(self.abs)),
            ("mode", Json::str(self.mode.name())),
            ("target", self.target.into()),
            ("time_ms", self.time_ms.into()),
            ("max_batches", self.max_batches.into()),
            ("priority", Json::from(i64::from(self.priority))),
            ("deadline_unix_ms", self.deadline_unix_ms.into()),
            ("units", self.units.map(u64::from).into()),
            ("lanes", self.lanes.map(u64::from).into()),
            ("tenant", self.tenant.clone().map(Json::str).into()),
            (
                "idempotency_key",
                self.idempotency_key.clone().map(Json::str).into(),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let problem = ProblemSpec::from_json(j.get("problem").ok_or("job needs a \"problem\"")?)?;
        let d = JobSpec::default();
        Ok(Self {
            problem,
            devices: j.get_u64("devices").map_or(d.devices, |v| v as usize),
            blocks: j.get_u64("blocks").map_or(d.blocks, |v| v as usize),
            seed: j.get_u64("seed").unwrap_or(d.seed),
            abs: j.get_bool("abs").unwrap_or(false),
            mode: match j.get_str("mode") {
                Some(m) => ExecMode::from_name(m)?,
                None => ExecMode::Sequential,
            },
            target: j.get_i64("target"),
            time_ms: j.get_u64("time_ms"),
            max_batches: j.get_u64("max_batches"),
            priority: j.get_i64("priority").unwrap_or(0) as i32,
            deadline_unix_ms: j.get_u64("deadline_unix_ms"),
            units: j.get_u64("units").map(|v| v as u32),
            lanes: j.get_u64("lanes").map(|v| v as u32),
            tenant: j.get_str("tenant").map(String::from),
            idempotency_key: j.get_str("idempotency_key").map(String::from),
        })
    }
}

/// Milliseconds since the unix epoch — the protocol's deadline clock.
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_through_json() {
        let spec = JobSpec {
            problem: ProblemSpec::random(24, 9),
            devices: 3,
            blocks: 2,
            seed: 42,
            abs: true,
            mode: ExecMode::Threaded,
            target: Some(-17),
            time_ms: Some(250),
            max_batches: Some(1000),
            priority: 5,
            deadline_unix_ms: Some(1_700_000_000_000),
            units: Some(4),
            lanes: Some(128),
            tenant: Some("acme".into()),
            idempotency_key: Some("req-0017".into()),
        };
        let line = spec.to_json().to_string();
        let back = JobSpec::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn lanes_validate_and_reach_the_solver_params() {
        let mut spec = JobSpec {
            max_batches: Some(10),
            ..JobSpec::default()
        };
        // Omitted and 0 are scalar; legal widths pass.
        for l in [None, Some(0), Some(64), Some(128), Some(192), Some(256)] {
            spec.lanes = l;
            spec.validate().unwrap();
        }
        for bad in [1u32, 63, 96, 320] {
            spec.lanes = Some(bad);
            assert!(spec.validate().is_err(), "lanes {bad}");
        }
        spec.lanes = Some(64);
        assert!(spec.build_solver().is_ok());
        // A bad width also fails solver construction (config validation).
        spec.lanes = Some(96);
        assert!(spec.build_solver().is_err());
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let j =
            Json::parse("{\"problem\":{\"kind\":\"random\",\"n\":16},\"max_batches\":10}").unwrap();
        let spec = JobSpec::from_json(&j).unwrap();
        assert_eq!(spec.devices, 2);
        assert_eq!(spec.mode, ExecMode::Sequential);
        assert_eq!(spec.problem.seed, 1);
        spec.validate().unwrap();
    }

    #[test]
    fn validation_demands_a_bound() {
        let mut spec = JobSpec::default();
        assert!(spec.validate().is_err(), "no termination at all");
        spec.target = Some(0);
        assert!(spec.validate().is_err(), "target alone is unbounded");
        spec.max_batches = Some(10);
        spec.validate().unwrap();
    }

    #[test]
    fn admission_caps_bound_untrusted_job_shape() {
        let bounded = |problem| JobSpec {
            problem,
            max_batches: Some(1),
            ..JobSpec::default()
        };
        // A generator n past the cap is refused at admission — before the
        // uncancellable O(n²) build could pin a worker.
        let err = bounded(ProblemSpec::random(MAX_PROBLEM_N + 1, 1))
            .validate()
            .unwrap_err();
        assert!(err.contains("admission cap"), "{err}");
        assert!(bounded(ProblemSpec::random(MAX_PROBLEM_N, 1))
            .validate()
            .is_ok());
        // QAP kinds square their size into variables: a tighter cap.
        let qap = ProblemSpec {
            kind: "tai".into(),
            n: Some(MAX_QAP_SIZE + 1),
            seed: 1,
            inline: None,
            kernel: KernelChoice::Auto,
        };
        assert!(bounded(qap).validate().is_err());
        // An inline header declaring a huge n must not reach the parser's
        // `vec![0; n]` — including via a second header that the full parser
        // would let overwrite a small first one.
        for text in [
            "p qubo 0 999999999999 0 0\n",
            "p qubo 0 4 0 0\np qubo 0 999999999999 0 0\n",
        ] {
            let err = bounded(ProblemSpec::inline_text(text))
                .validate()
                .unwrap_err();
            assert!(err.contains("admission cap"), "{err}");
        }
        assert!(bounded(ProblemSpec::inline_text("p qubo 0 4 0 0\n"))
            .validate()
            .is_ok());
        // Thread-tree shape is capped too.
        let wide = JobSpec {
            devices: MAX_DEVICES + 1,
            max_batches: Some(1),
            ..JobSpec::default()
        };
        assert!(wide.validate().is_err());
        let deep = JobSpec {
            blocks: MAX_BLOCKS + 1,
            max_batches: Some(1),
            ..JobSpec::default()
        };
        assert!(deep.validate().is_err());
    }

    #[test]
    fn inline_problem_builds_and_round_trips() {
        let mut b = dabs_model::QuboBuilder::new(4);
        b.add_linear(0, -3).add_quadratic(1, 2, 5);
        let q = b.build().unwrap();
        let spec = ProblemSpec::inline_text(dabs_model::io::write_qubo(&q));
        let wire =
            ProblemSpec::from_json(&Json::parse(&spec.to_json().to_string()).unwrap()).unwrap();
        let (model, name) = wire.build().unwrap();
        assert_eq!(model, q);
        assert_eq!(name, "inline(n=4)");
    }

    #[test]
    fn kernel_choice_rides_the_wire_and_selects_the_backend() {
        use dabs_model::KernelKind;
        // Default stays auto and is omitted-tolerant on parse.
        let j = Json::parse("{\"kind\":\"random\",\"n\":16}").unwrap();
        assert_eq!(
            ProblemSpec::from_json(&j).unwrap().kernel,
            KernelChoice::Auto
        );
        // Explicit choices round-trip and drive model selection.
        for (choice, kind) in [
            (KernelChoice::Csr, KernelKind::Csr),
            (KernelChoice::Dense, KernelKind::Dense),
        ] {
            let spec = ProblemSpec {
                kernel: choice,
                ..ProblemSpec::random(24, 5)
            };
            let wire =
                ProblemSpec::from_json(&Json::parse(&spec.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(wire, spec);
            let (model, _) = wire.build().unwrap();
            assert_eq!(model.kernel_kind(), kind, "{:?}", choice);
        }
        // Garbage is rejected at parse time, before any build work.
        let j = Json::parse("{\"kind\":\"random\",\"kernel\":\"gpu\"}").unwrap();
        assert!(ProblemSpec::from_json(&j).is_err());
    }

    #[test]
    fn forced_dense_kernel_is_bounded_at_admission() {
        use dabs_model::DENSE_AUTO_MAX_N;
        let dense = |spec: ProblemSpec| ProblemSpec {
            kernel: KernelChoice::Dense,
            ..spec
        };
        // At the cap: admitted (identical memory exposure to an auto-dense
        // QAP instance at its cap).
        assert!(dense(ProblemSpec::random(DENSE_AUTO_MAX_N, 1))
            .validate_size()
            .is_ok());
        // The guard binds only when MAX_PROBLEM_N and the dense ceiling
        // diverge; simulate that with an n past the dense cap.
        let err = dense(ProblemSpec::random(DENSE_AUTO_MAX_N + 1, 1))
            .validate_size()
            .unwrap_err();
        assert!(err.contains("dense admission cap"), "{err}");
        // QAP kinds square into n² variables before the dense check.
        let qap = ProblemSpec {
            kind: "tai".into(),
            n: Some(65),
            seed: 1,
            inline: None,
            kernel: KernelChoice::Dense,
        };
        let err = qap.validate_size().unwrap_err();
        assert!(err.contains("dense admission cap"), "{err}");
        // Inline declared-n headers are bounded the same way.
        let inline = dense(ProblemSpec::inline_text(format!(
            "p qubo 0 {} 0 0\n",
            DENSE_AUTO_MAX_N + 1
        )));
        assert!(inline.validate_size().is_err());
        // CSR/auto behaviour is unchanged.
        assert!(ProblemSpec::random(DENSE_AUTO_MAX_N, 1)
            .validate_size()
            .is_ok());
    }

    #[test]
    fn generator_kinds_build() {
        for kind in ["k2000", "g22", "random"] {
            let spec = ProblemSpec {
                kind: kind.into(),
                n: Some(32),
                seed: 3,
                inline: None,
                kernel: KernelChoice::Auto,
            };
            let (model, _) = spec.build().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(model.n() > 0);
        }
        assert!(ProblemSpec {
            kind: "nope".into(),
            n: None,
            seed: 1,
            inline: None,
            kernel: KernelChoice::Auto
        }
        .build()
        .is_err());
    }

    #[test]
    fn spec_solver_matches_cli_construction() {
        let spec = JobSpec {
            devices: 2,
            blocks: 1,
            seed: 77,
            max_batches: Some(60),
            ..JobSpec::default()
        };
        let solver = spec.build_solver().unwrap();
        let mut cfg = DabsConfig::dabs(2, 1);
        cfg.seed = 77;
        assert_eq!(solver.config().seed, cfg.seed);
        assert_eq!(solver.config().devices, cfg.devices);
    }
}
