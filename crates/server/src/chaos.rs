//! dabs-chaos: deterministic, seed-driven fault injection for the server
//! stack.
//!
//! A [`FaultPlan`] names a set of *sites* — places in the WAL, the worker
//! pool, and the event loop that have agreed to ask "should I fail here?"
//! before doing their real work — and gives each site an injection
//! probability, an optional cap, and a shared seed. Every decision comes
//! from a counter-indexed SplitMix64 stream, so a plan is reproducible:
//! the same spec over the same draw sequence injects the same faults, and
//! the per-site injected counters let a test assert its observability
//! gauges (`wal_errors`, `worker_restarts`, …) against exactly what the
//! plan injected rather than a guess.
//!
//! The hook is zero-cost when chaos is off: every site holds an
//! `Option<Arc<FaultPlan>>` and the common path is a `None` check. Plans
//! come from `serve --chaos <spec>` or the `DABS_CHAOS` env var (tests);
//! production servers simply never construct one.
//!
//! Spec grammar (comma-separated, order-free):
//!
//! ```text
//! seed=42,unit_panic=1x3,wal_fsync=0.5x2,read=0.05,stall_ms=20
//! ```
//!
//! `seed=N` seeds the draw streams (default 1); `<site>=<prob>[x<max>]`
//! arms a site with probability `prob` in `[0, 1]`, capped at `max` total
//! injections (uncapped without the suffix) — caps are what give a fault
//! storm a deterministic heal point; `stall_ms=N` sets the duration of an
//! injected `unit_stall`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One place in the stack that consults the plan before doing real work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `Wal::append` body write: the record is dropped as if `write_all`
    /// returned EIO.
    WalWrite,
    /// Flusher `sync_data`: the fsync reports failure.
    WalFsync,
    /// Worker pool, immediately after a unit is marked started: the unit
    /// panics.
    UnitPanic,
    /// Worker pool, between unit steps: the unit sleeps `stall_ms`.
    UnitStall,
    /// Event loop accept path: the freshly accepted connection is dropped
    /// as if `accept` returned EIO.
    Accept,
    /// Event loop read path: the connection dies as if `read` returned EIO.
    Read,
    /// Event loop write path: the connection dies as if `write` returned
    /// EIO.
    Write,
    /// Worker pop path: the worker thread exits (its popped unit is
    /// requeued first, so no work is lost) — exercises the supervisor's
    /// dead-thread respawn without poisoning anything.
    WorkerKill,
}

impl FaultSite {
    /// Every site, in stable index order.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::WalWrite,
        FaultSite::WalFsync,
        FaultSite::UnitPanic,
        FaultSite::UnitStall,
        FaultSite::Accept,
        FaultSite::Read,
        FaultSite::Write,
        FaultSite::WorkerKill,
    ];

    /// Stable spec/wire name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WalWrite => "wal_write",
            FaultSite::WalFsync => "wal_fsync",
            FaultSite::UnitPanic => "unit_panic",
            FaultSite::UnitStall => "unit_stall",
            FaultSite::Accept => "accept",
            FaultSite::Read => "read",
            FaultSite::Write => "write",
            FaultSite::WorkerKill => "worker_kill",
        }
    }

    /// Inverse of [`FaultSite::name`].
    pub fn by_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("site in ALL")
    }
}

/// Probability resolution: probabilities are stored in parts-per-million
/// so the draw stays in integer arithmetic.
const PPM: u64 = 1_000_000;

/// Per-site arming state. `draws` indexes the site's decision stream;
/// `injected` is the ground truth a soak test compares gauges against.
#[derive(Debug)]
struct SiteState {
    prob_ppm: u64,
    max: u64,
    draws: AtomicU64,
    injected: AtomicU64,
}

impl SiteState {
    fn off() -> SiteState {
        SiteState {
            prob_ppm: 0,
            max: u64::MAX,
            draws: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }
}

/// A parsed, armed fault plan. Shared (`Arc`) between every subsystem of
/// one server so the injected counters aggregate across them.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    stall_ms: u64,
    sites: [SiteState; 8],
}

/// SplitMix64 — the repo-standard seed scrambler (see `dabs-rng`);
/// duplicated here because the server crate injects faults below the
/// solver layer and must not depend on solver RNG state.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parse a chaos spec (grammar in the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 1,
            stall_ms: 10,
            sites: [
                SiteState::off(),
                SiteState::off(),
                SiteState::off(),
                SiteState::off(),
                SiteState::off(),
                SiteState::off(),
                SiteState::off(),
                SiteState::off(),
            ],
        };
        let mut armed = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: {part:?} is not key=value"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad seed {value:?}"))?;
                }
                "stall_ms" => {
                    plan.stall_ms = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad stall_ms {value:?}"))?;
                }
                site_name => {
                    let site = FaultSite::by_name(site_name).ok_or_else(|| {
                        format!(
                            "chaos spec: unknown site {site_name:?} (sites: {})",
                            FaultSite::ALL.map(FaultSite::name).join(", ")
                        )
                    })?;
                    let (prob_str, max) = match value.split_once('x') {
                        Some((p, m)) => (
                            p,
                            m.parse::<u64>()
                                .map_err(|_| format!("chaos spec: bad cap in {part:?}"))?,
                        ),
                        None => (value, u64::MAX),
                    };
                    let prob: f64 = prob_str
                        .parse()
                        .map_err(|_| format!("chaos spec: bad probability in {part:?}"))?;
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("chaos spec: probability in {part:?} not in [0, 1]"));
                    }
                    let state = &mut plan.sites[site.index()];
                    state.prob_ppm = (prob * PPM as f64).round() as u64;
                    state.max = max;
                    armed = armed || state.prob_ppm > 0;
                }
            }
        }
        if !armed {
            return Err("chaos spec arms no site (e.g. unit_panic=1x3)".into());
        }
        Ok(plan)
    }

    /// Plan from the `DABS_CHAOS` env var, if set. A malformed value is a
    /// hard error on stderr and `None` — silently ignoring a typo'd storm
    /// spec would make a chaos test pass vacuously.
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let spec = std::env::var("DABS_CHAOS").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(Arc::new(plan)),
            Err(e) => {
                eprintln!("DABS_CHAOS ignored: {e}");
                None
            }
        }
    }

    /// Should this site fail right now? Draws the site's next decision
    /// from its seeded stream; respects the site's injection cap.
    pub fn should_inject(&self, site: FaultSite) -> bool {
        let state = &self.sites[site.index()];
        if state.prob_ppm == 0 {
            return false;
        }
        let draw = state.draws.fetch_add(1, Ordering::Relaxed);
        let tag = (site.index() as u64 + 1) << 56;
        let hit = splitmix64(self.seed ^ tag ^ draw) % PPM < state.prob_ppm;
        if !hit {
            return false;
        }
        // Claim a cap slot; back out when the storm is spent.
        let claimed = state.injected.fetch_add(1, Ordering::Relaxed);
        if claimed >= state.max {
            state.injected.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// How many times this site actually injected — the ground truth the
    /// chaos soak compares the server's gauges against.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].injected.load(Ordering::Relaxed)
    }

    /// True once every armed site has reached its cap — the storm's
    /// deterministic heal point (always false if any armed site is
    /// uncapped).
    pub fn spent(&self) -> bool {
        self.sites.iter().all(|s| {
            s.prob_ppm == 0 || (s.max != u64::MAX && s.injected.load(Ordering::Relaxed) >= s.max)
        })
    }

    /// Duration of an injected `unit_stall`.
    pub fn stall_ms(&self) -> u64 {
        self.stall_ms
    }
}

/// The zero-cost-when-off hook every site calls: `None` (the production
/// state) is a single branch.
pub fn chaos_hit(plan: &Option<Arc<FaultPlan>>, site: FaultSite) -> bool {
    match plan {
        None => false,
        Some(p) => p.should_inject(site),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::by_name(site.name()), Some(site));
        }
        assert_eq!(FaultSite::by_name("nope"), None);
    }

    #[test]
    fn parse_full_grammar() {
        let plan =
            FaultPlan::parse("seed=42, unit_panic=1x3, wal_fsync=0.5x2, read=0.05, stall_ms=20")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.stall_ms(), 20);
        assert_eq!(plan.sites[FaultSite::UnitPanic.index()].prob_ppm, PPM);
        assert_eq!(plan.sites[FaultSite::UnitPanic.index()].max, 3);
        assert_eq!(plan.sites[FaultSite::WalFsync.index()].prob_ppm, PPM / 2);
        assert_eq!(plan.sites[FaultSite::Read.index()].prob_ppm, 50_000);
        assert_eq!(plan.sites[FaultSite::Read.index()].max, u64::MAX);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "seed=7",            // arms nothing
            "unit_panic",        // no value
            "bogus_site=1",      // unknown site
            "unit_panic=2",      // probability out of range
            "unit_panic=moo",    // unparseable probability
            "unit_panic=1xmoo",  // unparseable cap
            "seed=moo,read=0.1", // unparseable seed
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "spec {bad:?} should fail");
        }
    }

    #[test]
    fn probability_one_always_injects_up_to_cap() {
        let plan = FaultPlan::parse("seed=1,unit_panic=1x4").unwrap();
        let hits = (0..100)
            .filter(|_| plan.should_inject(FaultSite::UnitPanic))
            .count();
        assert_eq!(hits, 4);
        assert_eq!(plan.injected(FaultSite::UnitPanic), 4);
        assert!(plan.spent());
    }

    #[test]
    fn unarmed_sites_never_inject() {
        let plan = FaultPlan::parse("seed=1,unit_panic=1x1").unwrap();
        for _ in 0..50 {
            assert!(!plan.should_inject(FaultSite::WalFsync));
        }
        assert_eq!(plan.injected(FaultSite::WalFsync), 0);
    }

    #[test]
    fn draw_streams_are_deterministic_per_seed() {
        let decisions = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("seed={seed},read=0.3")).unwrap();
            (0..200)
                .map(|_| plan.should_inject(FaultSite::Read))
                .collect()
        };
        assert_eq!(decisions(7), decisions(7));
        assert_ne!(decisions(7), decisions(8));
        let hits = decisions(7).iter().filter(|&&b| b).count();
        // ~30% of 200 draws; wide band, but never 0 or all.
        assert!((20..=110).contains(&hits), "{hits} hits");
    }

    #[test]
    fn fractional_probability_respects_cap() {
        let plan = FaultPlan::parse("seed=3,write=0.5x5").unwrap();
        let hits = (0..1000)
            .filter(|_| plan.should_inject(FaultSite::Write))
            .count();
        assert_eq!(hits, 5);
        assert!(plan.spent());
    }

    #[test]
    fn uncapped_armed_site_is_never_spent() {
        let plan = FaultPlan::parse("seed=1,read=0.5").unwrap();
        for _ in 0..100 {
            plan.should_inject(FaultSite::Read);
        }
        assert!(!plan.spent());
    }

    #[test]
    fn chaos_hit_is_off_for_none() {
        assert!(!chaos_hit(&None, FaultSite::UnitPanic));
        let plan = Arc::new(FaultPlan::parse("seed=1,unit_panic=1x1").unwrap());
        assert!(chaos_hit(&Some(Arc::clone(&plan)), FaultSite::UnitPanic));
        assert!(!chaos_hit(&Some(plan), FaultSite::UnitPanic));
    }
}
