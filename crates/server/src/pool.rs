//! The elastic shared worker pool: jobs decompose into stealable *units*.
//!
//! The fixed job-per-worker pool bound one whole job to one long-lived
//! thread — a single saturating job monopolized its worker while siblings
//! idled. Here admission decomposes every sequential job into **units**
//! (slices of its batch budget, plus cube-seeded subproblem starts for
//! large instances), scheduled from per-worker deques:
//!
//! - an idle worker takes the most urgent queued unit anywhere in the pool
//!   (priority first, then units of jobs that have not started yet, then
//!   earliest deadline, then FIFO — so one job's units keep their admission
//!   order); taking a unit from another worker's deque is a **steal**;
//! - units of the same job share an **incumbent broadcast**: every
//!   improving solution is published to the [`JobRecord`], and a freshly
//!   dispatched (or stolen) unit warm-starts from the job's current best
//!   instead of from scratch;
//! - a running unit **splits cooperatively**: between scheduling quanta it
//!   checks whether the pool has gone idle, and if so carves half of its
//!   remaining batch budget into a new stealable unit; symmetrically it
//!   *yields* its remainder as a continuation unit when a strictly
//!   higher-priority unit is waiting and no worker is free;
//! - cancel revokes all queued units of the job, and a unit popped after
//!   its job's deadline passed re-checks the deadline (stale-deadline
//!   dequeue) so an expired job reports `expired` without burning pool
//!   time.
//!
//! A job's terminal phase is the fold of its unit outcomes
//! ([`JobRecord::finish_unit`]); per-unit completion is judged by
//! [`classify`] against the termination each unit actually executed under,
//! so the cancel/expired/done semantics of the one-job-per-worker runtime
//! are preserved exactly.

use crate::chaos::{chaos_hit, FaultPlan, FaultSite};
use crate::job::{JobRecord, UnitEnd, QUARANTINE_PANIC_THRESHOLD};
use crate::obs::{pool_obs, TimelineKind};
use crate::queue::AdmissionError;
use crate::spec::{now_unix_ms, ExecMode, JobSpec, MAX_UNITS_PER_JOB};
use dabs_core::{Incumbent, IncumbentObserver, SolveResult, Termination, UnitOutcome, WarmStart};
use dabs_model::{IncrementalState, QuboModel, Solution};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::job::JobPhase;

/// Smallest batch budget worth decomposing: below this, per-unit setup
/// (model build amortization aside, pool fills and RNG seeding) dominates,
/// and single-unit jobs keep the sequential runtime bit-identical to the
/// offline reference.
pub const MIN_UNIT_BATCHES: u64 = 100;

/// Batches a unit runs between scheduler checks (split / yield points).
/// Cancellation does not wait for a quantum boundary — the stop flag is
/// checked before every batch inside the solver.
const SPLIT_QUANTUM: u64 = 32;

/// A unit will not split or yield below this remaining budget.
const MIN_SPLIT_BATCHES: u64 = 64;

/// How often the supervisor scans for dead worker threads.
const SUPERVISE_TICK: Duration = Duration::from_millis(10);

/// Budget an idle-split carves off for the sibling: half the remaining
/// batches, but only when **both** halves stay positive — `None` otherwise.
/// The explicit guard (rather than relying on [`MIN_SPLIT_BATCHES`] staying
/// ≥ 2) is what keeps a unit with 0 or 1 remaining batches from minting a
/// zero-budget sibling whose empty run would fold as a phantom unit
/// outcome.
fn split_carve(remaining: u64) -> Option<u64> {
    let carved = remaining / 2;
    if carved == 0 || remaining - carved == 0 {
        return None;
    }
    Some(carved)
}

/// Cube seeding kicks in at this instance size (known-`n` problems only).
const CUBE_MIN_N: usize = 128;

/// Number of highest-|Δ| bits enumerated by cube seeding (2^k seed units).
const CUBE_BITS: u32 = 2;

/// What one unit executes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum UnitWork {
    /// A slice of the job's sequential batch budget (`None` = bounded by
    /// the job's time window / target only).
    Slice { batches: Option<u64> },
    /// A slice that starts from assignment `index` of the `CUBE_BITS`
    /// highest-|Δ| bits instead of the shared incumbent — cube-and-conquer
    /// style diversification for large instances.
    Cube { index: u32, batches: Option<u64> },
    /// The whole job, threaded mode (the solver parallelizes internally).
    Whole,
}

/// One queued unit.
#[derive(Debug, Clone)]
struct UnitTask {
    record: Arc<JobRecord>,
    work: UnitWork,
    priority: i32,
    deadline_unix_ms: Option<u64>,
    /// Pool-wide admission order; lower = earlier (FIFO tie-break).
    seq: u64,
    /// When this unit entered a deque — the origin of its queue-wait
    /// measurement. Split/yield continuations reset it at re-enqueue.
    enqueued_at: Instant,
}

impl UnitTask {
    /// Steal-order key, greater = more urgent: priority first, then units
    /// of jobs that have not executed anything yet (a fresh small job beats
    /// the tail of a saturating one), then nearest deadline, then FIFO.
    fn urgency(&self) -> (i32, bool, std::cmp::Reverse<u64>, std::cmp::Reverse<u64>) {
        let fresh = self.record.unit_counts().1 == 0;
        (
            self.priority,
            fresh,
            std::cmp::Reverse(self.deadline_unix_ms.unwrap_or(u64::MAX)),
            std::cmp::Reverse(self.seq),
        )
    }
}

/// Pool occupancy/throughput counters, exposed through the `stats`
/// protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolGauges {
    /// Worker threads in the pool.
    pub workers: u64,
    /// Workers currently executing a unit.
    pub busy: u64,
    /// Units waiting in per-worker deques.
    pub queued_units: u64,
    /// Units taken from another worker's deque.
    pub steals: u64,
    /// Units created by in-job splitting (idle-split + priority yield).
    pub splits: u64,
    /// Dead worker threads respawned by the supervisor.
    pub worker_restarts: u64,
    /// Queued units evicted by overload brownout.
    pub shed_units: u64,
    /// Whether the pool is currently in brownout (shedding low-priority
    /// load; clears once the queue drains below half capacity).
    pub brownout: bool,
}

#[derive(Debug)]
struct Sched {
    deques: Vec<VecDeque<UnitTask>>,
    next_rr: usize,
    next_seq: u64,
    closed: bool,
}

#[derive(Debug)]
struct PoolShared {
    sched: Mutex<Sched>,
    available: Condvar,
    capacity: usize,
    workers: usize,
    busy: AtomicUsize,
    queued: AtomicUsize,
    steals: AtomicU64,
    splits: AtomicU64,
    restarts: AtomicU64,
    shed: AtomicU64,
    /// Overload brownout latch: set when a shed happens, cleared once the
    /// queue drains below half capacity. While set, victim-less full
    /// rejections are reported as `Shed` so clients back off.
    brownout: AtomicBool,
    /// Fault-injection plan (`None` in production — the hooks cost one
    /// branch on a `None` option).
    chaos: Option<Arc<FaultPlan>>,
}

impl PoolShared {
    /// The scheduler lock, recovering from poisoning: every mutation under
    /// it is a single push/remove that leaves the deques structurally
    /// intact, so when a worker thread dies mid-section the survivors take
    /// the guard back instead of cascading the panic pool-wide. The death
    /// itself stays supervisor-visible through the dead thread's handle.
    fn lock_sched(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queued-unit count across all deques (gauge; racy by nature).
    fn queued_units(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    fn idle_workers(&self) -> usize {
        self.workers
            .saturating_sub(self.busy.load(Ordering::Relaxed))
    }

    /// Push one unit onto a deque — the submitting round-robin target, or
    /// `home` (the splitting worker's own deque, so an idle thief takes it).
    fn push_unit(&self, task: UnitTask, home: Option<usize>) {
        let mut s = self.lock_sched();
        let at = match home {
            Some(w) => w,
            None => {
                let w = s.next_rr;
                s.next_rr = (s.next_rr + 1) % self.workers;
                w
            }
        };
        s.deques[at].push_back(task);
        self.queued.fetch_add(1, Ordering::Relaxed);
        pool_obs().enqueued.inc();
        drop(s);
        self.available.notify_all();
    }

    /// Is a strictly higher-priority unit waiting anywhere? (Yield check —
    /// only meaningful when no worker is idle to take it.)
    fn higher_priority_waiting(&self, than: i32) -> bool {
        if self.queued_units() == 0 {
            return false;
        }
        let s = self.lock_sched();
        s.deques
            .iter()
            .flat_map(|d| d.iter())
            .any(|t| t.priority > than)
    }
}

/// The elastic pool: `W` supervised worker threads over per-worker unit
/// deques.
#[derive(Debug)]
pub struct ElasticPool {
    shared: Arc<PoolShared>,
    /// One slot per worker index; the supervisor swaps fresh handles in on
    /// respawn. `None` only transiently during a respawn or after `join`.
    slots: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl ElasticPool {
    /// Spawn `workers` threads; at most `capacity` units may be queued.
    pub fn spawn(workers: usize, capacity: usize) -> Self {
        Self::spawn_with_chaos(workers, capacity, None)
    }

    /// [`ElasticPool::spawn`] with a fault-injection plan threaded into the
    /// workers' chaos hooks (tests and `serve --chaos`).
    pub fn spawn_with_chaos(
        workers: usize,
        capacity: usize,
        chaos: Option<Arc<FaultPlan>>,
    ) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            sched: Mutex::new(Sched {
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                next_rr: 0,
                next_seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            workers,
            busy: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            brownout: AtomicBool::new(false),
            chaos,
        });
        let slots: Arc<Mutex<Vec<Option<JoinHandle<()>>>>> = Arc::new(Mutex::new(
            (0..workers)
                .map(|i| Some(spawn_worker(&shared, i)))
                .collect(),
        ));
        let supervisor = {
            let shared = Arc::clone(&shared);
            let slots = Arc::clone(&slots);
            std::thread::Builder::new()
                .name("dabs-pool-supervisor".into())
                .spawn(move || supervisor_loop(&shared, &slots))
                .expect("spawn supervisor thread")
        };
        Self {
            shared,
            slots,
            supervisor: Mutex::new(Some(supervisor)),
        }
    }

    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Worker threads currently alive. Supervision heals this back to
    /// [`ElasticPool::workers`] within a tick of any worker death.
    pub fn live_workers(&self) -> usize {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|h| !h.is_finished()))
            .count()
    }

    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Occupancy and throughput counters.
    pub fn gauges(&self) -> PoolGauges {
        PoolGauges {
            workers: self.shared.workers as u64,
            busy: self.shared.busy.load(Ordering::Relaxed) as u64,
            queued_units: self.shared.queued_units() as u64,
            steals: self.shared.steals.load(Ordering::Relaxed),
            splits: self.shared.splits.load(Ordering::Relaxed),
            worker_restarts: self.shared.restarts.load(Ordering::Relaxed),
            shed_units: self.shared.shed.load(Ordering::Relaxed),
            brownout: self.shared.brownout.load(Ordering::Relaxed),
        }
    }

    /// Admit one job: decompose it into units and queue them round-robin
    /// across the worker deques. Capacity counts *units*, so a wide job
    /// cannot starve admission accounting.
    pub fn submit(&self, record: &Arc<JobRecord>) -> Result<(), AdmissionError> {
        if let Some(deadline) = record.spec.deadline_unix_ms {
            let now = now_unix_ms();
            if now >= deadline {
                return Err(AdmissionError::PastDeadline {
                    late_by_ms: now - deadline,
                });
            }
        }
        let works = decompose(&record.spec, self.shared.workers);
        {
            let mut s = self.shared.lock_sched();
            if s.closed {
                return Err(AdmissionError::Closed);
            }
            // Overload brownout: when the queue is full, shed strictly
            // lower-priority queued jobs (whole jobs, lowest priority first)
            // to make room. A victim-less full rejection while the brownout
            // latch is set comes back as `Shed` so clients back off instead
            // of hammering a saturated pool.
            while self.shared.queued_units() + works.len() > self.shared.capacity {
                if !shed_one_lower(&self.shared, &mut s, record.spec.priority) {
                    return Err(if self.shared.brownout.load(Ordering::Relaxed) {
                        AdmissionError::Shed
                    } else {
                        AdmissionError::Full {
                            capacity: self.shared.capacity,
                        }
                    });
                }
            }
            record.plan_units(works.len() as u32);
            for work in works {
                let seq = s.next_seq;
                s.next_seq += 1;
                let at = s.next_rr;
                s.next_rr = (s.next_rr + 1) % self.shared.workers;
                s.deques[at].push_back(UnitTask {
                    record: Arc::clone(record),
                    work,
                    priority: record.spec.priority,
                    deadline_unix_ms: record.spec.deadline_unix_ms,
                    seq,
                    enqueued_at: Instant::now(),
                });
                self.shared.queued.fetch_add(1, Ordering::Relaxed);
                pool_obs().enqueued.inc();
            }
        }
        self.shared.available.notify_all();
        Ok(())
    }

    /// Graceful shutdown, phase 1: refuse new work and stop dispatching —
    /// workers *drain* every still-queued unit in revoked mode (no
    /// execution), so each partially-run job folds to `cancelled` with its
    /// best-so-far incumbent attached. Running units observe their job's
    /// stop flag (trip it via `JobRegistry::stop_all`) at the next batch.
    pub fn close(&self) {
        self.shared.lock_sched().closed = true;
        self.shared.available.notify_all();
    }

    /// Phase 2: wait for the supervisor and every worker to exit (call
    /// [`ElasticPool::close`] first). Idempotent; callable through a shared
    /// handle.
    pub fn join(&self) {
        let supervisor = self
            .supervisor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = supervisor {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
            slots.iter_mut().filter_map(Option::take).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn spawn_worker(shared: &Arc<PoolShared>, i: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("dabs-worker-{i}"))
        .spawn(move || worker_loop(&shared, i))
        .expect("spawn worker thread")
}

/// The supervisor tick: scan the worker slots, join any thread that died
/// (chaos kill, or a panic that escaped containment), and respawn its slot.
/// Voluntary exits — the pool is closed and drained — are left for `join`.
fn supervisor_loop(shared: &Arc<PoolShared>, slots: &Arc<Mutex<Vec<Option<JoinHandle<()>>>>>) {
    loop {
        if shared.lock_sched().closed {
            return;
        }
        std::thread::sleep(SUPERVISE_TICK);
        let mut guard = slots.lock().unwrap_or_else(PoisonError::into_inner);
        for (i, slot) in guard.iter_mut().enumerate() {
            if !slot.as_ref().is_some_and(|h| h.is_finished()) {
                continue;
            }
            if shared.lock_sched().closed {
                return;
            }
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
            shared.restarts.fetch_add(1, Ordering::Relaxed);
            pool_obs().worker_restarts.inc();
            dabs_obs::global().instant("worker_restart", "pool", i as u64, 0);
            *slot = Some(spawn_worker(shared, i));
        }
    }
}

/// Evict every queued unit of one brownout victim: the lowest-priority job
/// strictly below `than` that has not started executing. The victim fails
/// terminally with a `shed` error (its client can retry with backoff) and
/// the brownout latch is set. Returns `false` when no victim exists.
fn shed_one_lower(shared: &PoolShared, s: &mut Sched, than: i32) -> bool {
    let victim = s
        .deques
        .iter()
        .flat_map(|d| d.iter())
        .filter(|t| {
            t.priority < than && t.record.unit_counts().1 == 0 && !t.record.phase().is_terminal()
        })
        .min_by_key(|t| (t.priority, std::cmp::Reverse(t.seq)))
        .map(|t| Arc::clone(&t.record));
    let Some(victim) = victim else {
        return false;
    };
    let mut removed = 0u64;
    for d in &mut s.deques {
        let before = d.len();
        d.retain(|t| t.record.id != victim.id);
        removed += (before - d.len()) as u64;
    }
    shared.queued.fetch_sub(removed as usize, Ordering::Relaxed);
    shared.shed.fetch_add(removed, Ordering::Relaxed);
    shared.brownout.store(true, Ordering::Relaxed);
    pool_obs().shed_units.add(removed);
    dabs_obs::global().instant("shed", "pool", removed, victim.id);
    victim.stop.stop();
    victim.finish(
        JobPhase::Failed,
        None,
        Some("shed under overload brownout".into()),
    );
    removed > 0
}

/// Decompose a job spec into unit work descriptors.
///
/// - Threaded jobs stay whole (the solver parallelizes internally).
/// - Sequential batch-budget jobs split into at most `workers` even slices,
///   but only once the budget is ≥ 2×[`MIN_UNIT_BATCHES`] — small jobs stay
///   single-unit, which keeps them bit-identical to the offline sequential
///   reference. `spec.units` overrides the width (capped at
///   [`MAX_UNITS_PER_JOB`]).
/// - Large known-`n` instances additionally get cube-seeded units: when the
///   job is ≥ 4 units wide and `n ≥ CUBE_MIN_N`, the first 2^[`CUBE_BITS`]
///   units start from the enumerated assignments of the highest-|Δ| bits.
/// - Time/target-bounded jobs default to one unit (each extra unit would
///   re-run the whole window); `spec.units` opts into parallel arms.
fn decompose(spec: &JobSpec, workers: usize) -> Vec<UnitWork> {
    if spec.mode == ExecMode::Threaded {
        return vec![UnitWork::Whole];
    }
    let width = match (spec.units, spec.max_batches) {
        (Some(u), _) => u as u64,
        (None, Some(b)) => (b / MIN_UNIT_BATCHES).min(workers as u64).max(1),
        (None, None) => 1,
    }
    .clamp(1, u64::from(MAX_UNITS_PER_JOB));
    match spec.max_batches {
        None => (0..width)
            .map(|_| UnitWork::Slice { batches: None })
            .collect(),
        Some(b) => {
            let width = width.min(b.max(1));
            let base = b / width;
            let rem = b % width;
            let cubes = if width >= 4 && spec.problem.n.is_some_and(|n| n >= CUBE_MIN_N) {
                1u64 << CUBE_BITS
            } else {
                0
            };
            (0..width)
                .map(|i| {
                    let batches = Some(base + u64::from(i < rem));
                    if i < cubes {
                        UnitWork::Cube {
                            index: i as u32,
                            batches,
                        }
                    } else {
                        UnitWork::Slice { batches }
                    }
                })
                .collect()
        }
    }
}

/// The start solution for cube unit `index`: the `CUBE_BITS` bits whose
/// zero-state flip deltas have the largest magnitude are set according to
/// the bits of `index`; everything else starts at zero. (A seed-level cube:
/// the bits steer where the unit begins, they are not clamped during the
/// search.)
fn cube_seed(model: &QuboModel, index: u32) -> Solution {
    let n = model.n();
    let state = IncrementalState::new(model);
    let deltas = state.deltas();
    let mut bits: Vec<usize> = (0..n).collect();
    bits.sort_by_key(|&i| (std::cmp::Reverse(deltas[i].unsigned_abs()), i));
    let mut seed = Solution::zeros(n);
    for (j, &bit) in bits.iter().take(CUBE_BITS as usize).enumerate() {
        if (index >> j) & 1 == 1 {
            seed.set(bit, true);
        }
    }
    seed
}

fn worker_loop(shared: &Arc<PoolShared>, me: usize) {
    loop {
        let (task, revoked) = {
            let mut s = shared.lock_sched();
            loop {
                // Most urgent unit anywhere in the pool; taking it from
                // another worker's deque is a steal. The seq tie-break
                // keeps units of one job in admission order, so a
                // single-worker pool folds a job exactly like the
                // sequential reference.
                let chosen = s
                    .deques
                    .iter()
                    .enumerate()
                    .flat_map(|(w, d)| d.iter().enumerate().map(move |(j, t)| (w, j, t.urgency())))
                    .max_by_key(|&(_, _, u)| u)
                    .map(|(w, j, _)| (w, j));
                if let Some((w, j)) = chosen {
                    let t = s.deques[w].remove(j).expect("chosen unit present");
                    shared.queued.fetch_sub(1, Ordering::Relaxed);
                    if w != me {
                        shared.steals.fetch_add(1, Ordering::Relaxed);
                        pool_obs().steals.inc();
                        dabs_obs::global().instant("steal", "pool", me as u64, t.record.id);
                    }
                    break (Some(t), s.closed);
                }
                if s.closed {
                    break (None, true);
                }
                s = shared
                    .available
                    .wait(s)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(task) = task else {
            return; // closed and fully drained
        };
        if shared.brownout.load(Ordering::Relaxed) && shared.queued_units() < shared.capacity / 2 {
            // The queue drained below half capacity: brownout is over.
            shared.brownout.store(false, Ordering::Relaxed);
        }
        if chaos_hit(&shared.chaos, FaultSite::WorkerKill) {
            // Simulated worker death: give the unit back, then vanish. The
            // supervisor notices the dead slot within a tick and respawns
            // it; no unit is lost.
            shared.push_unit(task, None);
            return;
        }
        let queue_wait = task.enqueued_at.elapsed();
        let obs = pool_obs();
        obs.popped.inc();
        obs.queue_wait_us.record(queue_wait.as_micros() as u64);
        shared.busy.fetch_add(1, Ordering::Relaxed);
        run_task(Some((shared, me)), &task, revoked, queue_wait);
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Wire label for a unit's end, used in timelines and traces.
fn end_name(end: UnitEnd) -> &'static str {
    match end {
        UnitEnd::Completed => "completed",
        UnitEnd::Interrupted => "interrupted",
        UnitEnd::Revoked => "revoked",
        UnitEnd::Failed => "failed",
    }
}

/// Execute (or revoke) one popped unit. `pool` is absent when called from
/// the standalone [`execute`] path — no splitting or yielding then.
/// `queue_wait` is how long the unit sat in a deque before this pop.
fn run_task(
    pool: Option<(&Arc<PoolShared>, usize)>,
    task: &UnitTask,
    revoked: bool,
    queue_wait: Duration,
) {
    let record = &task.record;
    let worker = pool.map_or(0, |(_, me)| me as u64);
    if record.phase().is_terminal() {
        // Cancelled/expired while this unit sat in a deque; the record is
        // already folded or abandoned — just drop the unit.
        return;
    }
    if record.is_quarantined() {
        // Poison job: refuse execution outright. Each refused unit folds as
        // failed, so the job still reaches its terminal phase.
        pool_obs().revoked.inc();
        record.finish_unit(
            UnitEnd::Failed,
            None,
            Some("job quarantined after repeated unit panics".into()),
        );
        return;
    }
    // Stale-deadline dequeue: a deadline that passed while the unit was
    // queued expires the whole job if nothing ran yet; if siblings already
    // ran, this unit's window is simply gone (counts as completed-empty —
    // the siblings were deadline-clamped themselves).
    if task
        .deadline_unix_ms
        .is_some_and(|deadline| now_unix_ms() >= deadline)
    {
        if record.expire_if_unstarted("deadline passed while queued") {
            pool_obs().expired.inc();
            dabs_obs::global().instant("expire", "pool", worker, record.id);
            return;
        }
        record.finish_unit(UnitEnd::Completed, None, None);
        return;
    }
    if revoked || record.cancel_requested() || record.stop.is_stopped() {
        // Shutdown drain, or a cancel/stop that landed while queued: the
        // unit is revoked without execution. (A sibling that reached the
        // target also lands here via the stop broadcast — the fold still
        // reports `done` because the merged result reached the target.)
        pool_obs().revoked.inc();
        dabs_obs::global().instant("revoke", "pool", worker, record.id);
        record.finish_unit(UnitEnd::Revoked, None, None);
        return;
    }
    let Some(unit) = record.begin_unit() else {
        return; // lost a race with a terminal transition
    };
    record.push_timeline(TimelineKind::UnitStart {
        unit,
        worker,
        queue_wait_us: queue_wait.as_micros() as u64,
    });
    let span = dabs_obs::global().span("unit_run", "pool", worker, record.id);
    let started = Instant::now();
    // Supervision boundary: a panicking unit must not take its worker (or
    // the whole process) down. The unit folds as failed, and a job whose
    // units keep panicking is quarantined — refused further execution.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_unit(pool, task, unit)
    }));
    let (_end, batches) = match outcome {
        Ok(done) => done,
        Err(_) => {
            pool_obs().unit_panics.inc();
            let panics = record.note_panic();
            if panics >= QUARANTINE_PANIC_THRESHOLD && record.quarantine() {
                pool_obs().quarantined_jobs.inc();
                // Stop running siblings promptly; their interrupted ends
                // still lose to the failed fold.
                record.stop.stop();
            }
            end_unit(
                record,
                unit,
                UnitEnd::Failed,
                0,
                None,
                Some(format!("unit panicked ({panics} panics for this job)")),
            )
        }
    };
    pool_obs()
        .unit_run_us
        .record(started.elapsed().as_micros() as u64);
    span.finish("batches", batches as i64);
}

/// Log the unit's end on the job timeline, then fold its outcome into the
/// record. The push must precede the fold: folding the last unit fires the
/// terminal notification (and its `Terminal` timeline event), and clients
/// fetch the timeline as soon as that lands — the terminal event must be
/// the log's final entry.
fn end_unit(
    record: &Arc<JobRecord>,
    unit: u32,
    end: UnitEnd,
    batches: u64,
    out: Option<UnitOutcome>,
    error: Option<String>,
) -> (UnitEnd, u64) {
    record.push_timeline(TimelineKind::UnitEnd {
        unit,
        end: end_name(end).to_string(),
        batches,
    });
    record.finish_unit(end, out, error);
    (end, batches)
}

/// Run one claimed unit to an end and account it on the record. Returns
/// how the unit ended and how many batches it executed (for the caller's
/// timeline/trace bookkeeping).
fn execute_unit(
    pool: Option<(&Arc<PoolShared>, usize)>,
    task: &UnitTask,
    ordinal: u32,
) -> (UnitEnd, u64) {
    let record = &task.record;
    if let Some((shared, _)) = pool {
        if chaos_hit(&shared.chaos, FaultSite::UnitStall) {
            let ms = shared.chaos.as_ref().map_or(0, |p| p.stall_ms());
            std::thread::sleep(Duration::from_millis(ms));
        }
        if chaos_hit(&shared.chaos, FaultSite::UnitPanic) {
            // resume_unwind skips the panic hook: an injected panic should
            // exercise the supervision boundary, not spam stderr.
            std::panic::resume_unwind(Box::new("chaos: injected unit panic"));
        }
    }
    let model = match record.model() {
        Ok(m) => m,
        Err(e) => {
            return end_unit(record, ordinal, UnitEnd::Failed, 0, None, Some(e));
        }
    };
    let solver = match record.spec.build_solver() {
        Ok(s) => s,
        Err(e) => {
            return end_unit(record, ordinal, UnitEnd::Failed, 0, None, Some(e));
        }
    };
    let clock = record.unit_clock();

    // The wall-clock window this unit may still use: the job's `time_ms`
    // minus what earlier units already consumed (the window is shared — all
    // units measure from the job's first unit start), clamped to the
    // remaining deadline. A closed window means the job's time is simply
    // up: the unit completes empty and the fold judges the siblings.
    let mut window: Option<Duration> = record
        .spec
        .time_ms
        .map(|ms| Duration::from_millis(ms).saturating_sub(clock.elapsed()));
    if let Some(deadline) = record.spec.deadline_unix_ms {
        let left = Duration::from_millis(deadline.saturating_sub(now_unix_ms()));
        window = Some(window.map_or(left, |w| w.min(left)));
    }
    if window == Some(Duration::ZERO) {
        return end_unit(record, ordinal, UnitEnd::Completed, 0, None, None);
    }

    let observer: IncumbentObserver = {
        let record = Arc::clone(record);
        Arc::new(move |inc: &Incumbent| {
            record.offer_incumbent(&inc.solution, inc.energy, inc.found_at);
        })
    };

    let mut term = Termination::external(Arc::clone(&record.stop));
    term.target_energy = record.spec.target;
    term.time_limit = window;

    let (slice, warm) = match &task.work {
        UnitWork::Whole => {
            // Threaded mode: the solver runs the whole job internally.
            term.max_batches = record.spec.max_batches;
            let result = solver.run_with_observer(&model, term.clone(), observer);
            return finish_run(record, &term, result, ordinal);
        }
        UnitWork::Slice { batches } => (*batches, record.incumbent()),
        UnitWork::Cube { index, batches } => {
            // A cube unit starts from its enumerated corner, not the shared
            // incumbent — that divergence is the point.
            let seed = cube_seed(&model, *index);
            let energy = model.energy(&seed);
            (*batches, Some((seed, energy)))
        }
    };
    term.max_batches = slice;
    let warm = warm.map(|(solution, energy)| WarmStart { solution, energy });

    let mut unit = solver.start_unit(&model, term.clone(), Some(observer), warm);
    let mut remaining = slice.unwrap_or(u64::MAX);
    let mut assigned = slice; // shrinks when this unit splits or yields
    let mut terminated = false;
    while remaining > 0 {
        let before = unit.batches();
        terminated = unit.step(remaining.min(SPLIT_QUANTUM));
        remaining = remaining.saturating_sub(unit.batches() - before);
        if terminated || remaining == 0 {
            break;
        }
        let Some((shared, me)) = pool else {
            continue;
        };
        if slice.is_none() {
            continue; // window-bounded units have no batch budget to split
        }
        if remaining >= 2 * MIN_SPLIT_BATCHES
            && shared.idle_workers() > 0
            && shared.queued_units() == 0
        {
            // In-job split: the pool went idle mid-run — carve half the
            // remaining budget into a stealable sibling so the idle worker
            // joins this job (warm-started from the shared incumbent).
            let Some(carved) = split_carve(remaining) else {
                continue;
            };
            if record.add_split_unit() {
                remaining -= carved;
                assigned = assigned.map(|a| a - carved);
                shared.splits.fetch_add(1, Ordering::Relaxed);
                pool_obs().splits.inc();
                dabs_obs::global().instant("split", "pool", me as u64, record.id);
                shared.push_unit(
                    UnitTask {
                        record: Arc::clone(record),
                        work: UnitWork::Slice {
                            batches: Some(carved),
                        },
                        enqueued_at: Instant::now(),
                        ..task.clone()
                    },
                    Some(me),
                );
            }
        } else if remaining >= MIN_SPLIT_BATCHES.max(1)
            && shared.idle_workers() == 0
            && shared.higher_priority_waiting(task.priority)
        {
            // Priority yield: hand the remainder back as a continuation
            // unit and free this worker for the more urgent one. The
            // executed prefix is complete in itself; the continuation owns
            // the rest of the budget.
            if record.add_split_unit() {
                assigned = assigned.map(|a| a - remaining);
                shared.splits.fetch_add(1, Ordering::Relaxed);
                pool_obs().yields.inc();
                dabs_obs::global().instant("yield", "pool", me as u64, record.id);
                shared.push_unit(
                    UnitTask {
                        record: Arc::clone(record),
                        work: UnitWork::Slice {
                            batches: Some(remaining),
                        },
                        enqueued_at: Instant::now(),
                        ..task.clone()
                    },
                    Some(me),
                );
                break;
            }
        }
    }
    let _ = terminated;
    let out = unit.finish();
    // Judge this unit against the budget it actually kept (after splits and
    // yields) — exactly PR 2's completion rule, per unit.
    let mut judged = term;
    judged.max_batches = assigned;
    if out.result.reached_target {
        // Success broadcast: siblings stop at their next batch and the
        // queued remainder is revoked; the fold still reports `done`.
        record.stop.stop();
    }
    let end = match classify(record, &judged, &out.result) {
        JobPhase::Done => UnitEnd::Completed,
        _ => UnitEnd::Interrupted,
    };
    let batches = out.result.batches;
    end_unit(record, ordinal, end, batches, Some(out), None)
}

/// Account a whole-job (threaded-mode) run as the record's single unit.
fn finish_run(
    record: &Arc<JobRecord>,
    term: &Termination,
    result: SolveResult,
    unit: u32,
) -> (UnitEnd, u64) {
    if result.reached_target {
        record.stop.stop();
    }
    let end = match classify(record, term, &result) {
        JobPhase::Done => UnitEnd::Completed,
        _ => UnitEnd::Interrupted,
    };
    let batches = result.batches;
    end_unit(
        record,
        unit,
        end,
        batches,
        Some(UnitOutcome {
            result,
            found: true,
        }),
        None,
    )
}

/// Execute one job record synchronously to a terminal phase, as a
/// sequential fold of the same units the pool would create for a one-worker
/// pool (FIFO, incumbent broadcast between consecutive units, no stealing
/// or splitting). Public so embedded callers — tests, single-shot tools —
/// can run a record without a pool; also the reference the scheduler's
/// merged results are property-tested against.
pub fn execute(record: &Arc<JobRecord>) {
    if let Some(deadline) = record.spec.deadline_unix_ms {
        if now_unix_ms() >= deadline && record.expire_if_unstarted("deadline passed while queued") {
            return;
        }
    }
    let works = decompose(&record.spec, 1);
    record.plan_units(works.len() as u32);
    for (seq, work) in works.into_iter().enumerate() {
        if record.phase().is_terminal() {
            return;
        }
        run_task(
            None,
            &UnitTask {
                record: Arc::clone(record),
                work,
                priority: record.spec.priority,
                deadline_unix_ms: record.spec.deadline_unix_ms,
                seq: seq as u64,
                enqueued_at: Instant::now(),
            },
            false,
            Duration::ZERO,
        );
    }
}

/// Decide the terminal phase of a run that just returned `result`, where
/// `term` is the termination the run *actually* executed under (including
/// the deadline clamp and any budget moved to split/continuation units —
/// not a recomputation from the spec, which would misjudge a
/// deadline-clamped run that completed its whole window).
///
/// A tripped stop flag means a client cancel or a server shutdown
/// (`stop_all`) reached the job — but the flag alone cannot distinguish a
/// run that was actually cut short from one where the cancel landed *after*
/// the solver already hit its own termination (target reached, batch or
/// time budget exhausted). Judging completion from the result closes that
/// race: a fully completed run stays `done` no matter when the flag
/// tripped, while a genuinely interrupted one (e.g. a shutdown-drained job
/// that never executed a batch) reports `cancelled` instead of handing the
/// client a fabricated success.
fn classify(record: &JobRecord, term: &Termination, result: &SolveResult) -> JobPhase {
    let ran_to_completion = result.reached_target
        || term.max_batches.is_some_and(|m| result.batches >= m)
        || term.time_limit.is_some_and(|t| result.elapsed >= t);
    if ran_to_completion || !(record.cancel_requested() || record.stop.is_stopped()) {
        JobPhase::Done
    } else {
        JobPhase::Cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRegistry;
    use crate::spec::ProblemSpec;
    use dabs_core::Termination;
    #[cfg(test)]
    use dabs_model::KernelChoice;

    fn registry() -> Arc<JobRegistry> {
        Arc::new(JobRegistry::new())
    }

    fn small_job(seed: u64, batches: u64) -> JobSpec {
        JobSpec {
            problem: ProblemSpec::random(20, seed),
            devices: 2,
            blocks: 1,
            seed,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    }

    #[test]
    fn pool_drains_queue_and_results_match_offline_reference() {
        // 150-batch jobs stay single-unit, so the pool must reproduce the
        // offline sequential reference bit-for-bit even with 3 workers.
        let registry = registry();
        let pool = ElasticPool::spawn(3, 64);
        let mut records = Vec::new();
        for seed in 1..=12u64 {
            let record = registry.register(small_job(seed, 150));
            pool.submit(&record).unwrap();
            records.push(record);
        }
        for record in &records {
            assert!(
                record.wait_terminal(Duration::from_secs(60)),
                "job {} stuck",
                record.id
            );
            let (phase, result, error) = record.snapshot();
            assert_eq!(phase, JobPhase::Done, "{error:?}");
            let result = result.expect("done jobs carry a result");
            let (model, _) = record.spec.problem.build().unwrap();
            let reference = record
                .spec
                .build_solver()
                .unwrap()
                .run_sequential(&model, record.spec.termination());
            assert_eq!(result.energy, reference.energy, "job {}", record.id);
            assert_eq!(result.best, reference.best);
        }
        pool.close();
        pool.join();
    }

    #[test]
    fn decomposed_job_executes_all_units_and_spends_the_whole_budget() {
        let registry = registry();
        let pool = ElasticPool::spawn(4, 64);
        let record = registry.register(JobSpec {
            units: Some(6),
            ..small_job(3, 1_200)
        });
        pool.submit(&record).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(120)));
        let (phase, result, error) = record.snapshot();
        assert_eq!(phase, JobPhase::Done, "{error:?}");
        let result = result.unwrap();
        // Merged batches must equal the full budget: no unit lost, none
        // duplicated (splits move budget, they never mint it).
        assert_eq!(result.batches, 1_200);
        let (total, started, finished) = record.unit_counts();
        assert_eq!(finished, total);
        assert!(started >= 6, "{started} of {total} units started");
        pool.close();
        pool.join();
    }

    #[test]
    fn split_carve_never_mints_zero_budget_siblings() {
        // Regression for the phantom-unit fold: remaining ∈ {0, 1} must not
        // split at all, and every legal carve leaves both sides positive.
        assert_eq!(split_carve(0), None);
        assert_eq!(split_carve(1), None);
        assert_eq!(split_carve(2), Some(1));
        assert_eq!(split_carve(2 * MIN_SPLIT_BATCHES), Some(MIN_SPLIT_BATCHES));
        for remaining in 0..=512u64 {
            if let Some(carved) = split_carve(remaining) {
                assert!(carved > 0, "zero-budget sibling at remaining={remaining}");
                assert!(
                    remaining - carved > 0,
                    "parent left empty at remaining={remaining}"
                );
            } else {
                assert!(remaining < 2, "refused a splittable budget {remaining}");
            }
        }
    }

    #[test]
    fn bulk_lane_job_folds_like_its_offline_reference() {
        // A lanes>0 job rides the same decomposition machinery; the folded
        // result must match the sequential reference bit-for-bit.
        let registry = registry();
        let pool = ElasticPool::spawn(2, 64);
        let record = registry.register(JobSpec {
            lanes: Some(64),
            units: Some(2),
            ..small_job(7, 240)
        });
        pool.submit(&record).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(120)));
        let (phase, result, error) = record.snapshot();
        assert_eq!(phase, JobPhase::Done, "{error:?}");
        let result = result.unwrap();
        let (model, _) = record.spec.problem.build().unwrap();
        assert_eq!(model.energy(&result.best), result.energy);
        assert_eq!(result.batches, 240);
        pool.close();
        pool.join();
    }

    #[test]
    fn expired_job_is_skipped_by_the_worker() {
        let registry = registry();
        let record = registry.register(JobSpec {
            deadline_unix_ms: Some(now_unix_ms().saturating_sub(10)),
            ..small_job(1, 1_000)
        });
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Expired);
        assert!(result.is_none());
    }

    #[test]
    fn stale_deadline_is_rechecked_at_dequeue() {
        // Admission passes (deadline still in the future), but the deadline
        // expires while the unit sits behind a long-running job: the pop
        // re-check must report `expired` without executing anything. The
        // blocker outranks the doomed job on priority — at equal priority
        // the earliest-deadline tie-break would let the doomed unit jump
        // the queue whenever both are pushed before the worker's first pop.
        let registry = registry();
        let pool = ElasticPool::spawn(1, 64);
        let blocker = registry.register(JobSpec {
            max_batches: None,
            time_ms: Some(400),
            priority: 1,
            ..small_job(9, 0)
        });
        pool.submit(&blocker).unwrap();
        let doomed = registry.register(JobSpec {
            deadline_unix_ms: Some(now_unix_ms() + 100),
            ..small_job(2, 50_000)
        });
        pool.submit(&doomed).unwrap();
        assert!(doomed.wait_terminal(Duration::from_secs(30)));
        let (phase, result, error) = doomed.snapshot();
        assert_eq!(phase, JobPhase::Expired, "{error:?}");
        assert!(result.is_none());
        assert_eq!(doomed.unit_counts().1, 0, "expired job must not run");
        pool.close();
        pool.join();
    }

    #[test]
    fn bad_problem_fails_cleanly() {
        let registry = registry();
        let record = registry.register(JobSpec {
            problem: ProblemSpec {
                kind: "no-such-kind".into(),
                n: None,
                seed: 1,
                inline: None,
                kernel: KernelChoice::Auto,
            },
            ..small_job(1, 10)
        });
        execute(&record);
        let (phase, _, error) = record.snapshot();
        assert_eq!(phase, JobPhase::Failed);
        assert!(error.unwrap().contains("no-such-kind"));
    }

    #[test]
    fn cancelled_running_job_stops_and_keeps_partial_result() {
        let registry = registry();
        // A long job: huge batch budget, no time limit.
        let record = registry.register(small_job(5, u64::MAX / 2));
        let runner = {
            let record = Arc::clone(&record);
            std::thread::spawn(move || execute(&record))
        };
        // Wait until it is running, then cancel.
        let t0 = std::time::Instant::now();
        while record.phase() != JobPhase::Running {
            assert!(t0.elapsed() < Duration::from_secs(10), "never started");
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        record.request_cancel();
        let cancel_at = std::time::Instant::now();
        assert!(record.wait_terminal(Duration::from_secs(5)));
        assert!(
            cancel_at.elapsed() < Duration::from_millis(250),
            "cancel latency {:?}",
            cancel_at.elapsed()
        );
        runner.join().unwrap();
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Cancelled);
        assert!(result.is_some(), "partial result preserved");
    }

    #[test]
    fn cancel_revokes_every_queued_unit_of_the_job() {
        let registry = registry();
        let pool = ElasticPool::spawn(1, 128);
        // A blocker so the victim's units all sit queued.
        let blocker = registry.register(JobSpec {
            max_batches: None,
            time_ms: Some(300),
            ..small_job(8, 0)
        });
        pool.submit(&blocker).unwrap();
        let victim = registry.register(JobSpec {
            units: Some(8),
            ..small_job(4, 80_000)
        });
        pool.submit(&victim).unwrap();
        assert_eq!(victim.request_cancel(), JobPhase::Cancelled);
        assert!(victim.wait_terminal(Duration::from_secs(10)));
        // None of the victim's units may ever start.
        pool.close();
        pool.join();
        assert_eq!(victim.unit_counts().1, 0, "revoked unit executed");
        assert!(blocker.wait_terminal(Duration::from_secs(10)));
    }

    #[test]
    fn shutdown_drained_job_reports_cancelled_not_done() {
        // A queued job whose stop flag trips before a worker reaches it
        // (server shutdown path: pool.close() + registry.stop_all()) must
        // not surface as a successful "done" with a zero result.
        let registry = registry();
        let record = registry.register(small_job(9, u64::MAX / 2));
        registry.stop_all();
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Cancelled);
        assert!(result.is_none(), "nothing ran, so no fabricated result");
    }

    #[test]
    fn classify_judges_completion_from_the_result_not_flag_timing() {
        let registry = registry();
        let record = registry.register(small_job(11, 40));
        let (model, _) = record.spec.problem.build().unwrap();
        let solver = record.spec.build_solver().unwrap();
        // A run that exhausted the job's own 40-batch budget, and one that
        // a stop flag would have cut short at 5 batches.
        let spec_term = record.spec.termination();
        let complete = solver.run_sequential(&model, spec_term.clone());
        let partial = solver.run_sequential(&model, Termination::batches(5));
        assert_eq!(record.begin_unit(), Some(1));
        assert_eq!(classify(&record, &spec_term, &complete), JobPhase::Done);
        // A cancel that lands only after the run already hit its own
        // termination must not reclassify the completed run...
        record.request_cancel();
        assert_eq!(classify(&record, &spec_term, &complete), JobPhase::Done);
        // ...while a genuinely interrupted run still reports cancelled.
        assert_eq!(classify(&record, &spec_term, &partial), JobPhase::Cancelled);
        // A deadline-clamped run is judged against the clamp it actually
        // executed under, not the spec's longer budget: completing the
        // whole clamped window is completion, even with the flag tripped.
        let clamped = spec_term.with_time(partial.elapsed);
        assert_eq!(classify(&record, &clamped, &partial), JobPhase::Done);
    }

    #[test]
    fn threaded_mode_jobs_run_too() {
        let registry = registry();
        let record = registry.register(JobSpec {
            mode: ExecMode::Threaded,
            max_batches: None,
            time_ms: Some(150),
            ..small_job(7, 0)
        });
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Done);
        assert!(result.unwrap().batches > 0);
    }

    #[test]
    fn stop_flag_termination_used_by_worker_is_the_records() {
        let record = registry().register(small_job(3, 50));
        let term = record
            .spec
            .termination()
            .with_stop(Arc::clone(&record.stop));
        assert!(!term.stop_requested());
        record.stop.stop();
        assert!(term.stop_requested());
        // Same semantics the core Termination promises.
        let _ = Termination::external(Arc::clone(&record.stop));
    }

    #[test]
    fn decompose_widths() {
        // Small budgets stay single-unit (bit-identical sequential path).
        assert_eq!(decompose(&small_job(1, 150), 8).len(), 1);
        // Large budgets split up to the worker count.
        assert_eq!(decompose(&small_job(1, 1_000), 4).len(), 4);
        // Explicit width wins.
        let wide = JobSpec {
            units: Some(6),
            ..small_job(1, 1_000)
        };
        assert_eq!(decompose(&wide, 2).len(), 6);
        // Time-only jobs default to one arm.
        let timed = JobSpec {
            max_batches: None,
            time_ms: Some(100),
            ..small_job(1, 0)
        };
        assert_eq!(decompose(&timed, 8).len(), 1);
        // Threaded jobs stay whole.
        let threaded = JobSpec {
            mode: ExecMode::Threaded,
            ..small_job(1, 10_000)
        };
        assert_eq!(decompose(&threaded, 8), vec![UnitWork::Whole]);
        // Budgets are partitioned exactly.
        let budget: u64 = decompose(&wide, 2)
            .iter()
            .map(|w| match w {
                UnitWork::Slice { batches } | UnitWork::Cube { batches, .. } => batches.unwrap(),
                UnitWork::Whole => 0,
            })
            .sum();
        assert_eq!(budget, 1_000);
    }

    #[test]
    fn large_instances_get_cube_seeded_units() {
        let spec = JobSpec {
            problem: ProblemSpec::random(200, 1),
            units: Some(6),
            ..small_job(1, 1_200)
        };
        let works = decompose(&spec, 4);
        let cubes = works
            .iter()
            .filter(|w| matches!(w, UnitWork::Cube { .. }))
            .count();
        assert_eq!(cubes, 4);
        // Cube seeds are distinct corners of the same bit set.
        let (model, _) = spec.problem.build().unwrap();
        let seeds: Vec<Solution> = (0..4).map(|i| cube_seed(&model, i)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(seeds[i], seeds[j], "cube corners {i} and {j} collide");
            }
        }
    }

    #[test]
    fn incumbent_broadcast_reaches_single_worker_energy_at_equal_budget() {
        // Solver parity (acceptance criterion): a job executed as N units
        // with incumbent broadcast must reach an energy ≤ the single-worker
        // run at the same total flip budget.
        let spec = JobSpec {
            problem: ProblemSpec::random(64, 77),
            units: Some(4),
            ..small_job(77, 800)
        };
        let single = JobSpec {
            units: None,
            ..spec.clone()
        };
        let (model, _) = single.problem.build().unwrap();
        let reference = single
            .build_solver()
            .unwrap()
            .run_sequential(&model, single.termination());

        let registry = registry();
        let pool = ElasticPool::spawn(2, 64);
        let record = registry.register(spec);
        pool.submit(&record).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(120)));
        let (phase, result, error) = record.snapshot();
        assert_eq!(phase, JobPhase::Done, "{error:?}");
        let result = result.unwrap();
        assert_eq!(result.batches, 800);
        assert!(
            result.energy <= reference.energy,
            "decomposed {} vs single {}",
            result.energy,
            reference.energy
        );
        pool.close();
        pool.join();
    }

    #[test]
    fn target_reached_by_one_unit_halts_its_siblings() {
        // The zero solution has energy 0, so target=0 is reached by every
        // unit instantly; the first one to finish broadcasts stop and the
        // job folds to done, not cancelled.
        let registry = registry();
        let pool = ElasticPool::spawn(2, 64);
        let record = registry.register(JobSpec {
            target: Some(0),
            units: Some(4),
            ..small_job(6, 400_000)
        });
        pool.submit(&record).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(60)));
        let (phase, result, error) = record.snapshot();
        assert_eq!(phase, JobPhase::Done, "{error:?}");
        let result = result.unwrap();
        assert!(result.reached_target);
        assert!(
            result.batches < 400_000,
            "siblings kept burning the budget: {} batches",
            result.batches
        );
        pool.close();
        pool.join();
    }

    #[test]
    fn pool_gauges_count_work() {
        let registry = registry();
        let pool = ElasticPool::spawn(2, 64);
        assert_eq!(
            pool.gauges(),
            PoolGauges {
                workers: 2,
                ..PoolGauges::default()
            }
        );
        let record = registry.register(JobSpec {
            units: Some(4),
            ..small_job(2, 2_000)
        });
        pool.submit(&record).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(60)));
        let g = pool.gauges();
        assert_eq!(g.workers, 2);
        assert_eq!(g.queued_units, 0);
        pool.close();
        pool.join();
    }

    #[test]
    fn unit_capacity_is_enforced() {
        let registry = registry();
        let pool = ElasticPool::spawn(1, 4);
        // One blocker occupies the worker while the capacity fills.
        let blocker = registry.register(JobSpec {
            max_batches: None,
            time_ms: Some(300),
            ..small_job(5, 0)
        });
        pool.submit(&blocker).unwrap();
        // A 4-unit job exceeds what is left of the 4-slot capacity as soon
        // as any other unit is still queued.
        let wide = registry.register(JobSpec {
            units: Some(4),
            ..small_job(1, 50_000)
        });
        let narrow = registry.register(small_job(2, 150));
        pool.submit(&narrow).unwrap();
        match pool.submit(&wide) {
            Err(AdmissionError::Full { capacity: 4 }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        pool.close();
        pool.join();
    }

    #[test]
    fn panicking_unit_fails_job_and_worker_survives() {
        let plan = Arc::new(FaultPlan::parse("seed=1,unit_panic=1x1").unwrap());
        let registry = registry();
        let pool = ElasticPool::spawn_with_chaos(1, 64, Some(Arc::clone(&plan)));
        let doomed = registry.register(small_job(1, 150));
        pool.submit(&doomed).unwrap();
        assert!(doomed.wait_terminal(Duration::from_secs(30)));
        let (phase, _, error) = doomed.snapshot();
        assert_eq!(phase, JobPhase::Failed);
        assert!(error.unwrap().contains("unit panicked"));
        assert_eq!(plan.injected(FaultSite::UnitPanic), 1);
        // The worker contained the panic: the next job runs normally on the
        // same (still-alive) thread.
        let healthy = registry.register(small_job(2, 150));
        pool.submit(&healthy).unwrap();
        assert!(healthy.wait_terminal(Duration::from_secs(30)));
        assert_eq!(healthy.snapshot().0, JobPhase::Done);
        assert_eq!(pool.live_workers(), 1);
        assert_eq!(pool.gauges().worker_restarts, 0, "no thread died");
        pool.close();
        pool.join();
    }

    #[test]
    fn repeated_panics_quarantine_the_job() {
        let plan = Arc::new(FaultPlan::parse("seed=1,unit_panic=1x3").unwrap());
        let registry = registry();
        let pool = ElasticPool::spawn_with_chaos(1, 64, Some(plan));
        let poison = registry.register(JobSpec {
            units: Some(4),
            ..small_job(3, 1_200)
        });
        pool.submit(&poison).unwrap();
        assert!(poison.wait_terminal(Duration::from_secs(30)));
        let (phase, _, error) = poison.snapshot();
        assert_eq!(phase, JobPhase::Failed);
        assert!(error.unwrap().contains("unit panicked"));
        assert!(poison.is_quarantined(), "3 panics must quarantine");
        assert_eq!(poison.panic_count(), 3);
        // The pool itself still serves fresh jobs.
        let healthy = registry.register(small_job(5, 150));
        pool.submit(&healthy).unwrap();
        assert!(healthy.wait_terminal(Duration::from_secs(30)));
        assert_eq!(healthy.snapshot().0, JobPhase::Done);
        pool.close();
        pool.join();
    }

    #[test]
    fn dead_worker_is_respawned_and_its_unit_survives() {
        let plan = Arc::new(FaultPlan::parse("seed=1,worker_kill=1x1").unwrap());
        let registry = registry();
        let pool = ElasticPool::spawn_with_chaos(1, 64, Some(Arc::clone(&plan)));
        let record = registry.register(small_job(4, 150));
        pool.submit(&record).unwrap();
        // The first pop kills the only worker; the unit is re-queued and
        // the supervisor must respawn the slot for the job to finish at
        // all.
        assert!(record.wait_terminal(Duration::from_secs(30)));
        assert_eq!(record.snapshot().0, JobPhase::Done);
        assert_eq!(plan.injected(FaultSite::WorkerKill), 1);
        assert!(pool.gauges().worker_restarts >= 1);
        assert_eq!(pool.live_workers(), 1, "pool not healed to full width");
        pool.close();
        pool.join();
    }

    #[test]
    fn poisoned_sched_lock_does_not_cascade() {
        let registry = registry();
        let pool = ElasticPool::spawn(2, 64);
        let shared = Arc::clone(&pool.shared);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.sched.lock().unwrap();
            // resume_unwind: poison the lock without panic-hook noise.
            std::panic::resume_unwind(Box::new("poison the sched lock"));
        });
        assert!(poisoner.join().is_err());
        assert!(pool.shared.sched.is_poisoned());
        // Admission and execution still work through the recovered guard.
        let record = registry.register(small_job(6, 150));
        pool.submit(&record).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(30)));
        assert_eq!(record.snapshot().0, JobPhase::Done);
        pool.close();
        pool.join();
    }

    #[test]
    fn brownout_sheds_lower_priority_queued_jobs() {
        let registry = registry();
        let pool = ElasticPool::spawn(1, 4);
        // Occupy the single worker so everything below stays queued.
        let blocker = registry.register(JobSpec {
            max_batches: None,
            time_ms: Some(400),
            priority: 9,
            ..small_job(8, 0)
        });
        pool.submit(&blocker).unwrap();
        let t0 = Instant::now();
        while pool.gauges().busy == 0 {
            assert!(t0.elapsed() < Duration::from_secs(10), "blocker stuck");
            std::thread::yield_now();
        }
        // Three low-priority jobs fill 3 of the 4 unit slots.
        let victims: Vec<_> = (0..3)
            .map(|i| {
                let r = registry.register(small_job(10 + i, 150));
                pool.submit(&r).unwrap();
                r
            })
            .collect();
        // A wide higher-priority job needs all 4 slots: every victim is
        // shed to admit it.
        let urgent = registry.register(JobSpec {
            units: Some(4),
            priority: 3,
            ..small_job(2, 1_200)
        });
        pool.submit(&urgent).unwrap();
        for v in &victims {
            let (phase, _, error) = v.snapshot();
            assert_eq!(phase, JobPhase::Failed);
            assert!(error.unwrap().contains("shed"), "victim not shed");
        }
        let g = pool.gauges();
        assert_eq!(g.shed_units, 3);
        assert!(g.brownout);
        // While browned out, a victim-less full rejection reports `Shed`
        // (the client should back off, not just retry the same queue).
        let refused = registry.register(small_job(20, 150));
        assert!(matches!(pool.submit(&refused), Err(AdmissionError::Shed)));
        assert!(urgent.wait_terminal(Duration::from_secs(60)));
        assert_eq!(urgent.snapshot().0, JobPhase::Done);
        pool.close();
        pool.join();
    }
}
