//! The solver worker pool: `W` long-lived threads executing queued jobs.
//!
//! This is the multiplexing layer the paper's architecture needs to serve
//! many tenants: a thousand clients submit a thousand jobs, but only `W`
//! solver executions exist at any instant — queued work waits in the
//! admission queue instead of spawning a thousand solver thread-trees. A
//! worker claims the highest-priority job, materializes its model, threads
//! the job's stop flag and deadline clamp into the solver's `Termination`,
//! and streams incumbents to subscribers through the job record.

use crate::job::{JobPhase, JobRecord, JobRegistry};
use crate::queue::JobQueue;
use crate::spec::{now_unix_ms, ExecMode};
use dabs_core::{Incumbent, IncumbentObserver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle over the worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` solver threads draining `queue`.
    pub fn spawn(workers: usize, queue: Arc<JobQueue>, registry: Arc<JobRegistry>) -> Self {
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("dabs-worker-{i}"))
                    .spawn(move || {
                        while let Some(id) = queue.pop() {
                            if let Some(record) = registry.get(id) {
                                execute(&record);
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self { handles }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Wait for every worker to exit (close the queue first).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Execute one claimed job to a terminal phase. Public so embedded callers
/// (tests, single-shot tools) can run a record without a pool.
pub fn execute(record: &Arc<JobRecord>) {
    // Deadline may have passed while the job sat in the queue.
    if let Some(deadline) = record.spec.deadline_unix_ms {
        if now_unix_ms() >= deadline {
            record.finish(
                JobPhase::Expired,
                None,
                Some("deadline passed while queued".into()),
            );
            return;
        }
    }
    if !record.mark_running() {
        return; // cancelled while queued; already terminal
    }
    let model = match record.spec.problem.build() {
        Ok((model, _name)) => model,
        Err(e) => {
            record.finish(JobPhase::Failed, None, Some(e));
            return;
        }
    };
    let solver = match record.spec.build_solver() {
        Ok(s) => s,
        Err(e) => {
            record.finish(JobPhase::Failed, None, Some(e));
            return;
        }
    };

    let mut termination = record
        .spec
        .termination()
        .with_stop(Arc::clone(&record.stop));
    if let Some(deadline) = record.spec.deadline_unix_ms {
        // Clamp the run to the remaining deadline window so a slow job
        // cannot blow past its own deadline on the worker.
        let remaining = Duration::from_millis(deadline.saturating_sub(now_unix_ms()));
        termination.time_limit = Some(match termination.time_limit {
            Some(t) => t.min(remaining),
            None => remaining,
        });
    }

    let observer: IncumbentObserver = {
        let record = Arc::clone(record);
        Arc::new(move |inc: &Incumbent| {
            record.publish_incumbent(inc.energy, inc.found_at);
        })
    };

    let result = match record.spec.mode {
        ExecMode::Sequential => solver.run_sequential_with_observer(&model, termination, observer),
        ExecMode::Threaded => solver.run_with_observer(&Arc::new(model), termination, observer),
    };

    // A tripped stop flag means the run was cut short externally — by a
    // client cancel or a server shutdown (`stop_all`). Either way the job
    // did not run to its own termination, so reporting `done` would hand
    // the client a fabricated result (a shutdown-drained job never executes
    // a batch and would claim energy 0).
    let phase = if record.cancel_requested() || record.stop.is_stopped() {
        JobPhase::Cancelled
    } else {
        JobPhase::Done
    };
    record.finish(phase, Some(result), None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, ProblemSpec};
    use dabs_core::Termination;

    fn registry() -> Arc<JobRegistry> {
        Arc::new(JobRegistry::new())
    }

    fn small_job(seed: u64, batches: u64) -> JobSpec {
        JobSpec {
            problem: ProblemSpec::random(20, seed),
            devices: 2,
            blocks: 1,
            seed,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    }

    #[test]
    fn pool_drains_queue_and_results_match_offline_reference() {
        let registry = registry();
        let queue = Arc::new(JobQueue::new(64));
        let pool = WorkerPool::spawn(3, Arc::clone(&queue), Arc::clone(&registry));
        let mut records = Vec::new();
        for seed in 1..=12u64 {
            let record = registry.register(small_job(seed, 150));
            queue
                .push(record.id, 0, record.spec.deadline_unix_ms)
                .unwrap();
            records.push(record);
        }
        for record in &records {
            assert!(
                record.wait_terminal(Duration::from_secs(60)),
                "job {} stuck",
                record.id
            );
            let (phase, result, error) = record.snapshot();
            assert_eq!(phase, JobPhase::Done, "{error:?}");
            let result = result.expect("done jobs carry a result");
            // Sequential mode must reproduce the offline reference exactly.
            let (model, _) = record.spec.problem.build().unwrap();
            let reference = record
                .spec
                .build_solver()
                .unwrap()
                .run_sequential(&model, record.spec.termination());
            assert_eq!(result.energy, reference.energy, "job {}", record.id);
            assert_eq!(result.best, reference.best);
        }
        queue.close();
        pool.join();
    }

    #[test]
    fn expired_job_is_skipped_by_the_worker() {
        let registry = registry();
        let record = registry.register(JobSpec {
            deadline_unix_ms: Some(now_unix_ms().saturating_sub(10)),
            ..small_job(1, 1_000)
        });
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Expired);
        assert!(result.is_none());
    }

    #[test]
    fn bad_problem_fails_cleanly() {
        let registry = registry();
        let record = registry.register(JobSpec {
            problem: ProblemSpec {
                kind: "no-such-kind".into(),
                n: None,
                seed: 1,
                inline: None,
            },
            ..small_job(1, 10)
        });
        execute(&record);
        let (phase, _, error) = record.snapshot();
        assert_eq!(phase, JobPhase::Failed);
        assert!(error.unwrap().contains("no-such-kind"));
    }

    #[test]
    fn cancelled_running_job_stops_and_keeps_partial_result() {
        let registry = registry();
        // A long job: huge batch budget, no time limit.
        let record = registry.register(small_job(5, u64::MAX / 2));
        let runner = {
            let record = Arc::clone(&record);
            std::thread::spawn(move || execute(&record))
        };
        // Wait until it is running, then cancel.
        let t0 = std::time::Instant::now();
        while record.phase() != JobPhase::Running {
            assert!(t0.elapsed() < Duration::from_secs(10), "never started");
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        record.request_cancel();
        let cancel_at = std::time::Instant::now();
        assert!(record.wait_terminal(Duration::from_secs(5)));
        assert!(
            cancel_at.elapsed() < Duration::from_millis(250),
            "cancel latency {:?}",
            cancel_at.elapsed()
        );
        runner.join().unwrap();
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Cancelled);
        assert!(result.is_some(), "partial result preserved");
    }

    #[test]
    fn shutdown_drained_job_reports_cancelled_not_done() {
        // A queued job whose stop flag trips before a worker reaches it
        // (server shutdown path: queue.close() + registry.stop_all()) must
        // not surface as a successful "done" with a zero result.
        let registry = registry();
        let record = registry.register(small_job(9, u64::MAX / 2));
        registry.stop_all();
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Cancelled);
        assert_eq!(result.expect("partial result attached").batches, 0);
    }

    #[test]
    fn threaded_mode_jobs_run_too() {
        let registry = registry();
        let record = registry.register(JobSpec {
            mode: ExecMode::Threaded,
            max_batches: None,
            time_ms: Some(150),
            ..small_job(7, 0)
        });
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Done);
        assert!(result.unwrap().batches > 0);
    }

    #[test]
    fn stop_flag_termination_used_by_worker_is_the_records() {
        let record = registry().register(small_job(3, 50));
        let term = record
            .spec
            .termination()
            .with_stop(Arc::clone(&record.stop));
        assert!(!term.stop_requested());
        record.stop.stop();
        assert!(term.stop_requested());
        // Same semantics the core Termination promises.
        let _ = Termination::external(Arc::clone(&record.stop));
    }
}
