//! The solver worker pool: `W` long-lived threads executing queued jobs.
//!
//! This is the multiplexing layer the paper's architecture needs to serve
//! many tenants: a thousand clients submit a thousand jobs, but only `W`
//! solver executions exist at any instant — queued work waits in the
//! admission queue instead of spawning a thousand solver thread-trees. A
//! worker claims the highest-priority job, materializes its model, threads
//! the job's stop flag and deadline clamp into the solver's `Termination`,
//! and streams incumbents to subscribers through the job record.

use crate::job::{JobPhase, JobRecord, JobRegistry};
use crate::queue::JobQueue;
use crate::spec::{now_unix_ms, ExecMode};
use dabs_core::{Incumbent, IncumbentObserver, SolveResult, Termination};
#[cfg(test)]
use dabs_model::KernelChoice;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle over the worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` solver threads draining `queue`.
    pub fn spawn(workers: usize, queue: Arc<JobQueue>, registry: Arc<JobRegistry>) -> Self {
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("dabs-worker-{i}"))
                    .spawn(move || {
                        while let Some(id) = queue.pop() {
                            if let Some(record) = registry.get(id) {
                                execute(&record);
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self { handles }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Wait for every worker to exit (close the queue first).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Execute one claimed job to a terminal phase. Public so embedded callers
/// (tests, single-shot tools) can run a record without a pool.
pub fn execute(record: &Arc<JobRecord>) {
    // Deadline may have passed while the job sat in the queue.
    if let Some(deadline) = record.spec.deadline_unix_ms {
        if now_unix_ms() >= deadline {
            record.finish(
                JobPhase::Expired,
                None,
                Some("deadline passed while queued".into()),
            );
            return;
        }
    }
    if !record.mark_running() {
        return; // cancelled while queued; already terminal
    }
    let model = match record.spec.problem.build() {
        Ok((model, _name)) => model,
        Err(e) => {
            record.finish(JobPhase::Failed, None, Some(e));
            return;
        }
    };
    let solver = match record.spec.build_solver() {
        Ok(s) => s,
        Err(e) => {
            record.finish(JobPhase::Failed, None, Some(e));
            return;
        }
    };

    let mut termination = record
        .spec
        .termination()
        .with_stop(Arc::clone(&record.stop));
    if let Some(deadline) = record.spec.deadline_unix_ms {
        // Clamp the run to the remaining deadline window so a slow job
        // cannot blow past its own deadline on the worker. The deadline may
        // have expired during the (uncancellable) model/solver build above;
        // a zero window must report `expired`, not run 0 batches and let
        // `classify` count `elapsed >= 0` as a completed run.
        let remaining = deadline.saturating_sub(now_unix_ms());
        if remaining == 0 {
            record.finish(
                JobPhase::Expired,
                None,
                Some("deadline passed during setup".into()),
            );
            return;
        }
        let remaining = Duration::from_millis(remaining);
        termination.time_limit = Some(match termination.time_limit {
            Some(t) => t.min(remaining),
            None => remaining,
        });
    }

    let observer: IncumbentObserver = {
        let record = Arc::clone(record);
        Arc::new(move |inc: &Incumbent| {
            record.publish_incumbent(inc.energy, inc.found_at);
        })
    };

    let run_termination = termination.clone();
    let result = match record.spec.mode {
        ExecMode::Sequential => solver.run_sequential_with_observer(&model, termination, observer),
        ExecMode::Threaded => solver.run_with_observer(&Arc::new(model), termination, observer),
    };

    record.finish(
        classify(record, &run_termination, &result),
        Some(result),
        None,
    );
}

/// Decide the terminal phase of a run that just returned `result`, where
/// `term` is the termination the run *actually* executed under (including
/// the worker's deadline clamp — not a recomputation from the spec, which
/// would misjudge a deadline-clamped run that completed its whole window).
///
/// A tripped stop flag means a client cancel or a server shutdown
/// (`stop_all`) reached the job — but the flag alone cannot distinguish a
/// run that was actually cut short from one where the cancel landed *after*
/// the solver already hit its own termination (target reached, batch or
/// time budget exhausted). Judging completion from the result closes that
/// race: a fully completed run stays `done` no matter when the flag
/// tripped, while a genuinely interrupted one (e.g. a shutdown-drained job
/// that never executed a batch) reports `cancelled` instead of handing the
/// client a fabricated success.
fn classify(record: &JobRecord, term: &Termination, result: &SolveResult) -> JobPhase {
    let ran_to_completion = result.reached_target
        || term.max_batches.is_some_and(|m| result.batches >= m)
        || term.time_limit.is_some_and(|t| result.elapsed >= t);
    if ran_to_completion || !(record.cancel_requested() || record.stop.is_stopped()) {
        JobPhase::Done
    } else {
        JobPhase::Cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, ProblemSpec};
    use dabs_core::Termination;

    fn registry() -> Arc<JobRegistry> {
        Arc::new(JobRegistry::new())
    }

    fn small_job(seed: u64, batches: u64) -> JobSpec {
        JobSpec {
            problem: ProblemSpec::random(20, seed),
            devices: 2,
            blocks: 1,
            seed,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    }

    #[test]
    fn pool_drains_queue_and_results_match_offline_reference() {
        let registry = registry();
        let queue = Arc::new(JobQueue::new(64));
        let pool = WorkerPool::spawn(3, Arc::clone(&queue), Arc::clone(&registry));
        let mut records = Vec::new();
        for seed in 1..=12u64 {
            let record = registry.register(small_job(seed, 150));
            queue
                .push(record.id, 0, record.spec.deadline_unix_ms)
                .unwrap();
            records.push(record);
        }
        for record in &records {
            assert!(
                record.wait_terminal(Duration::from_secs(60)),
                "job {} stuck",
                record.id
            );
            let (phase, result, error) = record.snapshot();
            assert_eq!(phase, JobPhase::Done, "{error:?}");
            let result = result.expect("done jobs carry a result");
            // Sequential mode must reproduce the offline reference exactly.
            let (model, _) = record.spec.problem.build().unwrap();
            let reference = record
                .spec
                .build_solver()
                .unwrap()
                .run_sequential(&model, record.spec.termination());
            assert_eq!(result.energy, reference.energy, "job {}", record.id);
            assert_eq!(result.best, reference.best);
        }
        queue.close();
        pool.join();
    }

    #[test]
    fn expired_job_is_skipped_by_the_worker() {
        let registry = registry();
        let record = registry.register(JobSpec {
            deadline_unix_ms: Some(now_unix_ms().saturating_sub(10)),
            ..small_job(1, 1_000)
        });
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Expired);
        assert!(result.is_none());
    }

    #[test]
    fn bad_problem_fails_cleanly() {
        let registry = registry();
        let record = registry.register(JobSpec {
            problem: ProblemSpec {
                kind: "no-such-kind".into(),
                n: None,
                seed: 1,
                inline: None,
                kernel: KernelChoice::Auto,
            },
            ..small_job(1, 10)
        });
        execute(&record);
        let (phase, _, error) = record.snapshot();
        assert_eq!(phase, JobPhase::Failed);
        assert!(error.unwrap().contains("no-such-kind"));
    }

    #[test]
    fn cancelled_running_job_stops_and_keeps_partial_result() {
        let registry = registry();
        // A long job: huge batch budget, no time limit.
        let record = registry.register(small_job(5, u64::MAX / 2));
        let runner = {
            let record = Arc::clone(&record);
            std::thread::spawn(move || execute(&record))
        };
        // Wait until it is running, then cancel.
        let t0 = std::time::Instant::now();
        while record.phase() != JobPhase::Running {
            assert!(t0.elapsed() < Duration::from_secs(10), "never started");
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        record.request_cancel();
        let cancel_at = std::time::Instant::now();
        assert!(record.wait_terminal(Duration::from_secs(5)));
        assert!(
            cancel_at.elapsed() < Duration::from_millis(250),
            "cancel latency {:?}",
            cancel_at.elapsed()
        );
        runner.join().unwrap();
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Cancelled);
        assert!(result.is_some(), "partial result preserved");
    }

    #[test]
    fn shutdown_drained_job_reports_cancelled_not_done() {
        // A queued job whose stop flag trips before a worker reaches it
        // (server shutdown path: queue.close() + registry.stop_all()) must
        // not surface as a successful "done" with a zero result.
        let registry = registry();
        let record = registry.register(small_job(9, u64::MAX / 2));
        registry.stop_all();
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Cancelled);
        assert_eq!(result.expect("partial result attached").batches, 0);
    }

    #[test]
    fn classify_judges_completion_from_the_result_not_flag_timing() {
        let registry = registry();
        let record = registry.register(small_job(11, 40));
        let (model, _) = record.spec.problem.build().unwrap();
        let solver = record.spec.build_solver().unwrap();
        // A run that exhausted the job's own 40-batch budget, and one that
        // a stop flag would have cut short at 5 batches.
        let spec_term = record.spec.termination();
        let complete = solver.run_sequential(&model, spec_term.clone());
        let partial = solver.run_sequential(&model, Termination::batches(5));
        record.mark_running();
        assert_eq!(classify(&record, &spec_term, &complete), JobPhase::Done);
        // A cancel that lands only after the run already hit its own
        // termination must not reclassify the completed run...
        record.request_cancel();
        assert_eq!(classify(&record, &spec_term, &complete), JobPhase::Done);
        // ...while a genuinely interrupted run still reports cancelled.
        assert_eq!(classify(&record, &spec_term, &partial), JobPhase::Cancelled);
        // A deadline-clamped run is judged against the clamp it actually
        // executed under, not the spec's longer budget: completing the
        // whole clamped window is completion, even with the flag tripped.
        let clamped = spec_term.with_time(partial.elapsed);
        assert_eq!(classify(&record, &clamped, &partial), JobPhase::Done);
    }

    #[test]
    fn threaded_mode_jobs_run_too() {
        let registry = registry();
        let record = registry.register(JobSpec {
            mode: ExecMode::Threaded,
            max_batches: None,
            time_ms: Some(150),
            ..small_job(7, 0)
        });
        execute(&record);
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase, JobPhase::Done);
        assert!(result.unwrap().batches > 0);
    }

    #[test]
    fn stop_flag_termination_used_by_worker_is_the_records() {
        let record = registry().register(small_job(3, 50));
        let term = record
            .spec
            .termination()
            .with_stop(Arc::clone(&record.stop));
        assert!(!term.stop_requested());
        record.stop.stop();
        assert!(term.stop_requested());
        // Same semantics the core Termination promises.
        let _ = Termination::external(Arc::clone(&record.stop));
    }
}
