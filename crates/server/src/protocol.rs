//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every line is one JSON object. Client→server lines are [`Request`]s
//! dispatched on their `"op"` field; server→client lines are [`Response`]s
//! dispatched on `"type"`. One connection may carry interleaved traffic —
//! a `subscribe` stream keeps emitting `incumbent` lines while other
//! request/response pairs proceed — so every response names the job it
//! belongs to. `docs/PROTOCOL.md` documents each message with examples; the
//! round-trip tests below keep that document honest.

use crate::obs::TimelineEvent;
use crate::spec::JobSpec;
use dabs_core::{MetricSet, SolveResult};
use serde::json::Json;

/// A job's identity, allocated at admission, unique per server lifetime.
pub type JobId = u64;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a new job.
    Submit(Box<JobSpec>),
    /// Snapshot a job's phase and best-so-far energy.
    Status(JobId),
    /// Trip the job's stop flag (honored between batches).
    Cancel(JobId),
    /// Reply with the job's final result once it is terminal (responds
    /// immediately if it already is).
    Result(JobId),
    /// Stream `incumbent` lines for the job until it is terminal, then a
    /// final `done` line.
    Subscribe(JobId),
    /// Runtime counters (queue depth, worker count, jobs by phase).
    Stats,
    /// Full observability snapshot: solver counters, pool counters, and
    /// latency histograms, as a metric set.
    Metrics,
    /// The job's event timeline (admission, unit starts/ends with queue
    /// waits, incumbents, terminal transition).
    Timeline(JobId),
    /// Liveness probe.
    Ping,
}

impl Request {
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit(spec) => {
                Json::obj([("op", Json::str("submit")), ("job", spec.to_json())])
            }
            Request::Status(id) => Json::obj([("op", Json::str("status")), ("job", (*id).into())]),
            Request::Cancel(id) => Json::obj([("op", Json::str("cancel")), ("job", (*id).into())]),
            Request::Result(id) => Json::obj([("op", Json::str("result")), ("job", (*id).into())]),
            Request::Subscribe(id) => {
                Json::obj([("op", Json::str("subscribe")), ("job", (*id).into())])
            }
            Request::Stats => Json::obj([("op", Json::str("stats"))]),
            Request::Metrics => Json::obj([("op", Json::str("metrics"))]),
            Request::Timeline(id) => {
                Json::obj([("op", Json::str("timeline")), ("job", (*id).into())])
            }
            Request::Ping => Json::obj([("op", Json::str("ping"))]),
        }
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let op = j.get_str("op").ok_or("request needs an \"op\" field")?;
        let job = || {
            j.get_u64("job")
                .ok_or_else(|| format!("{op:?} needs a \"job\" id"))
        };
        match op {
            "submit" => {
                let spec = JobSpec::from_json(j.get("job").ok_or("submit needs a \"job\" spec")?)?;
                Ok(Request::Submit(Box::new(spec)))
            }
            "status" => Ok(Request::Status(job()?)),
            "cancel" => Ok(Request::Cancel(job()?)),
            "result" => Ok(Request::Result(job()?)),
            "subscribe" => Ok(Request::Subscribe(job()?)),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "timeline" => Ok(Request::Timeline(job()?)),
            "ping" => Ok(Request::Ping),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Parse one protocol line.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let j = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        Self::from_json(&j)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Job admitted and queued.
    Submitted {
        job: JobId,
    },
    /// Job refused at admission (queue full, past deadline, invalid spec).
    Rejected {
        reason: String,
    },
    /// Request-level failure (unknown job, malformed line, …).
    Error {
        job: Option<JobId>,
        reason: String,
    },
    /// Point-in-time job snapshot.
    Status {
        job: JobId,
        phase: String,
        best: Option<i64>,
        /// Milliseconds since the job was submitted.
        age_ms: u64,
    },
    /// Cancellation acknowledged; `phase` is the job's phase *after* the
    /// cancel took effect on the registry (a queued job is already
    /// `cancelled`; a running one still `running` until its next batch
    /// boundary).
    CancelAck {
        job: JobId,
        phase: String,
    },
    /// A new global-best incumbent of a subscribed job.
    Incumbent {
        job: JobId,
        energy: i64,
        /// Milliseconds from job start to this incumbent.
        at_ms: u64,
    },
    /// Terminal notification: the job finished, was cancelled, expired, or
    /// failed. `result` is present for finished and cancelled-while-running
    /// jobs (best found so far).
    Done {
        job: JobId,
        phase: String,
        result: Option<Box<SolveResult>>,
        error: Option<String>,
    },
    /// Runtime counters. `queued`/`running`/`finished` count *jobs*;
    /// the pool gauges count *units* (the stealable slices jobs decompose
    /// into) and pool activity since startup.
    Stats {
        queued: u64,
        running: u64,
        finished: u64,
        workers: u64,
        queue_capacity: u64,
        /// Workers currently executing a unit.
        busy_workers: u64,
        /// Units waiting in worker deques.
        queued_units: u64,
        /// Units executed off another worker's deque (lifetime total).
        steals: u64,
        /// Units created by in-job splitting (lifetime total).
        splits: u64,
    },
    /// Full observability snapshot (`metrics` request).
    Metrics {
        metrics: Box<MetricSet>,
    },
    /// A job's event timeline (`timeline` request). `dropped` counts
    /// events lost to the record's bounded log.
    Timeline {
        job: JobId,
        events: Vec<TimelineEvent>,
        dropped: u64,
    },
    Pong,
}

impl Response {
    pub fn to_json(&self) -> Json {
        match self {
            Response::Submitted { job } => Json::obj([
                ("type", Json::str("submitted")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
            ]),
            Response::Rejected { reason } => Json::obj([
                ("type", Json::str("rejected")),
                ("ok", Json::Bool(false)),
                ("reason", Json::str(reason.clone())),
            ]),
            Response::Error { job, reason } => Json::obj([
                ("type", Json::str("error")),
                ("ok", Json::Bool(false)),
                ("job", (*job).into()),
                ("reason", Json::str(reason.clone())),
            ]),
            Response::Status {
                job,
                phase,
                best,
                age_ms,
            } => Json::obj([
                ("type", Json::str("status")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("phase", Json::str(phase.clone())),
                ("best", (*best).into()),
                ("age_ms", (*age_ms).into()),
            ]),
            Response::CancelAck { job, phase } => Json::obj([
                ("type", Json::str("cancelled")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("phase", Json::str(phase.clone())),
            ]),
            Response::Incumbent { job, energy, at_ms } => Json::obj([
                ("type", Json::str("incumbent")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("energy", (*energy).into()),
                ("at_ms", (*at_ms).into()),
            ]),
            Response::Done {
                job,
                phase,
                result,
                error,
            } => Json::obj([
                ("type", Json::str("done")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("phase", Json::str(phase.clone())),
                (
                    "result",
                    result.as_ref().map(|r| r.to_json()).unwrap_or(Json::Null),
                ),
                ("error", error.as_ref().map(|e| Json::str(e.clone())).into()),
            ]),
            Response::Stats {
                queued,
                running,
                finished,
                workers,
                queue_capacity,
                busy_workers,
                queued_units,
                steals,
                splits,
            } => Json::obj([
                ("type", Json::str("stats")),
                ("ok", Json::Bool(true)),
                ("queued", (*queued).into()),
                ("running", (*running).into()),
                ("finished", (*finished).into()),
                ("workers", (*workers).into()),
                ("queue_capacity", (*queue_capacity).into()),
                ("busy_workers", (*busy_workers).into()),
                ("queued_units", (*queued_units).into()),
                ("steals", (*steals).into()),
                ("splits", (*splits).into()),
            ]),
            Response::Metrics { metrics } => Json::obj([
                ("type", Json::str("metrics")),
                ("ok", Json::Bool(true)),
                ("metrics", metrics.to_json()),
            ]),
            Response::Timeline {
                job,
                events,
                dropped,
            } => Json::obj([
                ("type", Json::str("timeline")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                (
                    "events",
                    Json::Arr(events.iter().map(TimelineEvent::to_json).collect()),
                ),
                ("dropped", (*dropped).into()),
            ]),
            Response::Pong => Json::obj([("type", Json::str("pong")), ("ok", Json::Bool(true))]),
        }
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let ty = j.get_str("type").ok_or("response needs a \"type\" field")?;
        let job = || {
            j.get_u64("job")
                .ok_or_else(|| format!("{ty:?} needs a \"job\" id"))
        };
        let phase = || {
            j.get_str("phase")
                .map(String::from)
                .ok_or_else(|| format!("{ty:?} needs a \"phase\""))
        };
        match ty {
            "submitted" => Ok(Response::Submitted { job: job()? }),
            "rejected" => Ok(Response::Rejected {
                reason: j.get_str("reason").unwrap_or_default().to_string(),
            }),
            "error" => Ok(Response::Error {
                job: j.get_u64("job"),
                reason: j.get_str("reason").unwrap_or_default().to_string(),
            }),
            "status" => Ok(Response::Status {
                job: job()?,
                phase: phase()?,
                best: j.get_i64("best"),
                age_ms: j.get_u64("age_ms").unwrap_or(0),
            }),
            "cancelled" => Ok(Response::CancelAck {
                job: job()?,
                phase: phase()?,
            }),
            "incumbent" => Ok(Response::Incumbent {
                job: job()?,
                energy: j.get_i64("energy").ok_or("incumbent needs an \"energy\"")?,
                at_ms: j.get_u64("at_ms").unwrap_or(0),
            }),
            "done" => {
                let result = match j.get("result") {
                    None | Some(Json::Null) => None,
                    Some(r) => Some(Box::new(SolveResult::from_json(r)?)),
                };
                Ok(Response::Done {
                    job: job()?,
                    phase: phase()?,
                    result,
                    error: j.get_str("error").map(String::from),
                })
            }
            "stats" => Ok(Response::Stats {
                queued: j.get_u64("queued").unwrap_or(0),
                running: j.get_u64("running").unwrap_or(0),
                finished: j.get_u64("finished").unwrap_or(0),
                workers: j.get_u64("workers").unwrap_or(0),
                queue_capacity: j.get_u64("queue_capacity").unwrap_or(0),
                busy_workers: j.get_u64("busy_workers").unwrap_or(0),
                queued_units: j.get_u64("queued_units").unwrap_or(0),
                steals: j.get_u64("steals").unwrap_or(0),
                splits: j.get_u64("splits").unwrap_or(0),
            }),
            "metrics" => {
                let m = j.get("metrics").ok_or("metrics needs a \"metrics\" set")?;
                Ok(Response::Metrics {
                    metrics: Box::new(MetricSet::from_json(m)?),
                })
            }
            "timeline" => {
                let events = j
                    .get("events")
                    .and_then(Json::as_arr)
                    .ok_or("timeline needs an \"events\" array")?
                    .iter()
                    .map(TimelineEvent::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Timeline {
                    job: job()?,
                    events,
                    dropped: j.get_u64("dropped").unwrap_or(0),
                })
            }
            "pong" => Ok(Response::Pong),
            other => Err(format!("unknown response type {other:?}")),
        }
    }

    /// Parse one protocol line.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let j = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        Self::from_json(&j)
    }

    /// Encode as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(Box::new(JobSpec {
                problem: ProblemSpec::random(16, 2),
                max_batches: Some(100),
                priority: -3,
                ..JobSpec::default()
            })),
            Request::Status(7),
            Request::Cancel(8),
            Request::Result(9),
            Request::Subscribe(10),
            Request::Stats,
            Request::Metrics,
            Request::Timeline(11),
            Request::Ping,
        ];
        for r in reqs {
            let line = r.to_json().to_string();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Submitted { job: 1 },
            Response::Rejected {
                reason: "queue full".into(),
            },
            Response::Error {
                job: Some(4),
                reason: "no such job".into(),
            },
            Response::Error {
                job: None,
                reason: "bad JSON".into(),
            },
            Response::Status {
                job: 2,
                phase: "running".into(),
                best: Some(-31),
                age_ms: 12,
            },
            Response::CancelAck {
                job: 2,
                phase: "cancelled".into(),
            },
            Response::Incumbent {
                job: 2,
                energy: -40,
                at_ms: 3,
            },
            Response::Stats {
                queued: 1,
                running: 2,
                finished: 3,
                workers: 4,
                queue_capacity: 64,
                busy_workers: 3,
                queued_units: 9,
                steals: 17,
                splits: 5,
            },
            Response::Metrics {
                metrics: Box::new({
                    let mut set = dabs_core::MetricSet::new();
                    set.push(dabs_core::Metric::new(
                        "pool.steals",
                        17.0,
                        "count",
                        dabs_core::Direction::HigherIsBetter,
                    ));
                    set
                }),
            },
            Response::Timeline {
                job: 3,
                events: vec![
                    crate::obs::TimelineEvent {
                        at_us: 0,
                        kind: crate::obs::TimelineKind::Admitted,
                    },
                    crate::obs::TimelineEvent {
                        at_us: 40,
                        kind: crate::obs::TimelineKind::UnitStart {
                            unit: 1,
                            worker: 2,
                            queue_wait_us: 40,
                        },
                    },
                    crate::obs::TimelineEvent {
                        at_us: 90,
                        kind: crate::obs::TimelineKind::Terminal {
                            phase: "done".into(),
                        },
                    },
                ],
                dropped: 1,
            },
            Response::Pong,
        ];
        for r in resps {
            let line = r.encode();
            assert_eq!(Response::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn done_with_result_round_trips() {
        let spec = JobSpec {
            problem: ProblemSpec::random(12, 5),
            max_batches: Some(30),
            ..JobSpec::default()
        };
        let (model, _) = spec.problem.build().unwrap();
        let result = spec
            .build_solver()
            .unwrap()
            .run_sequential(&model, spec.termination());
        let r = Response::Done {
            job: 11,
            phase: "done".into(),
            result: Some(Box::new(result.clone())),
            error: None,
        };
        match Response::parse_line(&r.encode()).unwrap() {
            Response::Done {
                job,
                phase,
                result: Some(back),
                error: None,
            } => {
                assert_eq!(job, 11);
                assert_eq!(phase, "done");
                assert_eq!(back.energy, result.energy);
                assert_eq!(back.best, result.best);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::parse_line("not json").is_err());
        assert!(Request::parse_line("{}").is_err());
        assert!(
            Request::parse_line("{\"op\":\"status\"}").is_err(),
            "no job id"
        );
        assert!(Response::parse_line("{\"type\":\"warp\"}").is_err());
    }
}
