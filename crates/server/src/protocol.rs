//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every line is one JSON object. Client→server lines are [`Request`]s
//! dispatched on their `"op"` field; server→client lines are [`Response`]s
//! dispatched on `"type"`. One connection may carry interleaved traffic —
//! a `subscribe` stream keeps emitting `incumbent` lines while other
//! request/response pairs proceed — so every response names the job it
//! belongs to. `docs/PROTOCOL.md` documents each message with examples; the
//! round-trip tests below keep that document honest.

use crate::obs::TimelineEvent;
use crate::spec::JobSpec;
use dabs_core::{MetricSet, SolveResult};
use serde::json::Json;

/// A job's identity, allocated at admission, unique per server lifetime.
/// With a durable job log (`--wal-dir`) ids also survive restarts: replay
/// re-registers jobs under their original ids and resumes allocation above
/// the highest replayed id.
pub type JobId = u64;

/// The protocol version this server speaks. Version 1 is the PR 2 wire
/// format (no `hello`, no error codes); version 2 adds the `hello`
/// handshake, machine-readable `code` fields on `rejected`/`error` lines,
/// and idempotent submit. v2 is a strict superset: v1 clients that never
/// send `hello` keep working unchanged.
pub const PROTOCOL_VERSION: u64 = 2;

/// Feature tags advertised in the `hello` response, so clients can detect
/// capabilities without version arithmetic.
pub const PROTOCOL_FEATURES: &[&str] = &["error_codes", "idempotency", "tenants", "wal", "health"];

/// Stable machine-readable reason classes carried by every `rejected` and
/// `error` line (protocol v2). The human `msg`/`reason` text may change
/// between releases; these strings never do — clients branch on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    BadJson,
    /// The request was structurally invalid (missing fields, bad types).
    BadRequest,
    /// The submitted job spec failed validation.
    BadSpec,
    /// A request line exceeded the per-line byte cap; the connection closes.
    LineTooLong,
    /// The request line was not UTF-8; the connection closes.
    NotUtf8,
    /// Unknown `op` — likely a newer client against an older server.
    UnknownOp,
    /// The named job id is unknown (or evicted past the retention window).
    NoSuchJob,
    /// The admission queue is at capacity; retry with backoff.
    OverCapacity,
    /// The tenant's admission token bucket is empty; retry after a pause.
    RateLimited,
    /// The job's absolute deadline already passed at admission.
    PastDeadline,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The durable job log is failing writes or fsyncs: the server is in
    /// declared degraded mode and refuses durable admissions (unless it
    /// runs `--allow-volatile`). Retryable — the WAL heals itself when
    /// syncs start succeeding again.
    WalDegraded,
    /// The job's units panicked repeatedly and the job is quarantined:
    /// it will never be re-executed, on this server or after a restart.
    Quarantined,
    /// Brownout: the pool shed load to keep latency bounded and this
    /// admission was turned away. Retryable once pressure drains.
    Shed,
    /// Unexpected server-side failure.
    Internal,
    /// Forward compatibility: a code this build does not know.
    Other(String),
}

impl ErrorCode {
    /// The stable wire string.
    pub fn as_str(&self) -> &str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BadSpec => "bad_spec",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::NotUtf8 => "not_utf8",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::NoSuchJob => "no_such_job",
            ErrorCode::OverCapacity => "over_capacity",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::PastDeadline => "past_deadline",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::WalDegraded => "wal_degraded",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Shed => "shed",
            ErrorCode::Internal => "internal",
            ErrorCode::Other(s) => s,
        }
    }

    /// Inverse of [`ErrorCode::as_str`]; unknown strings survive as
    /// [`ErrorCode::Other`] so a newer server's codes pass through older
    /// clients intact.
    pub fn from_wire(s: &str) -> ErrorCode {
        match s {
            "bad_json" => ErrorCode::BadJson,
            "bad_request" => ErrorCode::BadRequest,
            "bad_spec" => ErrorCode::BadSpec,
            "line_too_long" => ErrorCode::LineTooLong,
            "not_utf8" => ErrorCode::NotUtf8,
            "unknown_op" => ErrorCode::UnknownOp,
            "no_such_job" => ErrorCode::NoSuchJob,
            "over_capacity" => ErrorCode::OverCapacity,
            "rate_limited" => ErrorCode::RateLimited,
            "past_deadline" => ErrorCode::PastDeadline,
            "shutting_down" => ErrorCode::ShuttingDown,
            "wal_degraded" => ErrorCode::WalDegraded,
            "quarantined" => ErrorCode::Quarantined,
            "shed" => ErrorCode::Shed,
            "internal" => ErrorCode::Internal,
            other => ErrorCode::Other(other.to_string()),
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request that could not be parsed, with the code the error line must
/// carry. What [`Request::parse_line`] returns on failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    pub code: ErrorCode,
    pub reason: String,
}

impl ProtocolError {
    fn new(code: ErrorCode, reason: impl Into<String>) -> Self {
        Self {
            code,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.reason)
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Protocol v2 version negotiation. Optional: a connection that never
    /// sends `hello` is treated as a v1 client. `tenant` names the admission
    /// bucket for every later submit on this connection that does not carry
    /// its own.
    Hello {
        /// Highest protocol version the client speaks.
        version: u64,
        tenant: Option<String>,
    },
    /// Admit a new job.
    Submit(Box<JobSpec>),
    /// Snapshot a job's phase and best-so-far energy.
    Status(JobId),
    /// Trip the job's stop flag (honored between batches).
    Cancel(JobId),
    /// Reply with the job's final result once it is terminal (responds
    /// immediately if it already is).
    Result(JobId),
    /// Stream `incumbent` lines for the job until it is terminal, then a
    /// final `done` line.
    Subscribe(JobId),
    /// Runtime counters (queue depth, worker count, jobs by phase).
    Stats,
    /// Full observability snapshot: solver counters, pool counters, and
    /// latency histograms, as a metric set.
    Metrics,
    /// The job's event timeline (admission, unit starts/ends with queue
    /// waits, incumbents, terminal transition).
    Timeline(JobId),
    /// Declared health: `ok | degraded | draining` plus the reasons — the
    /// probe a load balancer or retry loop polls before routing traffic.
    Health,
    /// Liveness probe.
    Ping,
}

impl Request {
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { version, tenant } => Json::obj([
                ("op", Json::str("hello")),
                ("version", (*version).into()),
                ("tenant", tenant.clone().map(Json::str).into()),
            ]),
            Request::Submit(spec) => {
                Json::obj([("op", Json::str("submit")), ("job", spec.to_json())])
            }
            Request::Status(id) => Json::obj([("op", Json::str("status")), ("job", (*id).into())]),
            Request::Cancel(id) => Json::obj([("op", Json::str("cancel")), ("job", (*id).into())]),
            Request::Result(id) => Json::obj([("op", Json::str("result")), ("job", (*id).into())]),
            Request::Subscribe(id) => {
                Json::obj([("op", Json::str("subscribe")), ("job", (*id).into())])
            }
            Request::Stats => Json::obj([("op", Json::str("stats"))]),
            Request::Metrics => Json::obj([("op", Json::str("metrics"))]),
            Request::Timeline(id) => {
                Json::obj([("op", Json::str("timeline")), ("job", (*id).into())])
            }
            Request::Health => Json::obj([("op", Json::str("health"))]),
            Request::Ping => Json::obj([("op", Json::str("ping"))]),
        }
    }

    pub fn from_json(j: &Json) -> Result<Self, ProtocolError> {
        let op = j.get_str("op").ok_or_else(|| {
            ProtocolError::new(ErrorCode::BadRequest, "request needs an \"op\" field")
        })?;
        let job = || {
            j.get_u64("job").ok_or_else(|| {
                ProtocolError::new(ErrorCode::BadRequest, format!("{op:?} needs a \"job\" id"))
            })
        };
        match op {
            "hello" => Ok(Request::Hello {
                version: j.get_u64("version").unwrap_or(1),
                tenant: j.get_str("tenant").map(String::from),
            }),
            "submit" => {
                let spec_json = j.get("job").ok_or_else(|| {
                    ProtocolError::new(ErrorCode::BadRequest, "submit needs a \"job\" spec")
                })?;
                let spec = JobSpec::from_json(spec_json)
                    .map_err(|e| ProtocolError::new(ErrorCode::BadSpec, e))?;
                Ok(Request::Submit(Box::new(spec)))
            }
            "status" => Ok(Request::Status(job()?)),
            "cancel" => Ok(Request::Cancel(job()?)),
            "result" => Ok(Request::Result(job()?)),
            "subscribe" => Ok(Request::Subscribe(job()?)),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "timeline" => Ok(Request::Timeline(job()?)),
            "health" => Ok(Request::Health),
            "ping" => Ok(Request::Ping),
            other => Err(ProtocolError::new(
                ErrorCode::UnknownOp,
                format!("unknown op {other:?}"),
            )),
        }
    }

    /// Parse one protocol line.
    pub fn parse_line(line: &str) -> Result<Self, ProtocolError> {
        let j = Json::parse(line)
            .map_err(|e| ProtocolError::new(ErrorCode::BadJson, format!("bad JSON: {e}")))?;
        Self::from_json(&j)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Version-negotiation reply (protocol v2). `version` is the highest
    /// version both sides speak.
    Hello {
        version: u64,
        features: Vec<String>,
    },
    /// Job admitted and queued. `duplicate` is true when the submit carried
    /// an idempotency key already seen within the retention window — `job`
    /// is then the *original* job's id, and no second job was admitted.
    Submitted {
        job: JobId,
        duplicate: bool,
    },
    /// Job refused at admission (queue full, past deadline, invalid spec).
    Rejected {
        code: ErrorCode,
        reason: String,
    },
    /// Request-level failure (unknown job, malformed line, …).
    Error {
        job: Option<JobId>,
        code: ErrorCode,
        reason: String,
    },
    /// Point-in-time job snapshot.
    Status {
        job: JobId,
        phase: String,
        best: Option<i64>,
        /// Milliseconds since the job was submitted.
        age_ms: u64,
    },
    /// Cancellation acknowledged; `phase` is the job's phase *after* the
    /// cancel took effect on the registry (a queued job is already
    /// `cancelled`; a running one still `running` until its next batch
    /// boundary).
    CancelAck {
        job: JobId,
        phase: String,
    },
    /// A new global-best incumbent of a subscribed job.
    Incumbent {
        job: JobId,
        energy: i64,
        /// Milliseconds from job start to this incumbent.
        at_ms: u64,
    },
    /// Terminal notification: the job finished, was cancelled, expired, or
    /// failed. `result` is present for finished and cancelled-while-running
    /// jobs (best found so far).
    Done {
        job: JobId,
        phase: String,
        result: Option<Box<SolveResult>>,
        error: Option<String>,
    },
    /// Runtime counters. `queued`/`running`/`finished` count *jobs*;
    /// the pool gauges count *units* (the stealable slices jobs decompose
    /// into) and pool activity since startup.
    Stats {
        queued: u64,
        running: u64,
        finished: u64,
        workers: u64,
        queue_capacity: u64,
        /// Workers currently executing a unit.
        busy_workers: u64,
        /// Units waiting in worker deques.
        queued_units: u64,
        /// Units executed off another worker's deque (lifetime total).
        steals: u64,
        /// Units created by in-job splitting (lifetime total).
        splits: u64,
    },
    /// Full observability snapshot (`metrics` request).
    Metrics {
        metrics: Box<MetricSet>,
    },
    /// A job's event timeline (`timeline` request). `dropped` counts
    /// events lost to the record's bounded log.
    Timeline {
        job: JobId,
        events: Vec<TimelineEvent>,
        dropped: u64,
    },
    /// Declared health (`health` request). `status` is one of
    /// `ok | degraded | draining`; `reasons` lists the active degradations
    /// (`wal_errors`, `brownout`, …), empty when `ok`.
    Health {
        status: String,
        reasons: Vec<String>,
    },
    Pong,
}

impl Response {
    pub fn to_json(&self) -> Json {
        match self {
            Response::Hello { version, features } => Json::obj([
                ("type", Json::str("hello")),
                ("ok", Json::Bool(true)),
                ("version", (*version).into()),
                (
                    "features",
                    Json::Arr(features.iter().map(|f| Json::str(f.clone())).collect()),
                ),
            ]),
            Response::Submitted { job, duplicate } => Json::obj([
                ("type", Json::str("submitted")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("duplicate", Json::Bool(*duplicate)),
            ]),
            Response::Rejected { code, reason } => Json::obj([
                ("type", Json::str("rejected")),
                ("ok", Json::Bool(false)),
                ("code", Json::str(code.as_str())),
                ("reason", Json::str(reason.clone())),
            ]),
            Response::Error { job, code, reason } => Json::obj([
                ("type", Json::str("error")),
                ("ok", Json::Bool(false)),
                ("job", (*job).into()),
                ("code", Json::str(code.as_str())),
                ("reason", Json::str(reason.clone())),
            ]),
            Response::Status {
                job,
                phase,
                best,
                age_ms,
            } => Json::obj([
                ("type", Json::str("status")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("phase", Json::str(phase.clone())),
                ("best", (*best).into()),
                ("age_ms", (*age_ms).into()),
            ]),
            Response::CancelAck { job, phase } => Json::obj([
                ("type", Json::str("cancelled")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("phase", Json::str(phase.clone())),
            ]),
            Response::Incumbent { job, energy, at_ms } => Json::obj([
                ("type", Json::str("incumbent")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("energy", (*energy).into()),
                ("at_ms", (*at_ms).into()),
            ]),
            Response::Done {
                job,
                phase,
                result,
                error,
            } => Json::obj([
                ("type", Json::str("done")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                ("phase", Json::str(phase.clone())),
                (
                    "result",
                    result.as_ref().map(|r| r.to_json()).unwrap_or(Json::Null),
                ),
                ("error", error.as_ref().map(|e| Json::str(e.clone())).into()),
            ]),
            Response::Stats {
                queued,
                running,
                finished,
                workers,
                queue_capacity,
                busy_workers,
                queued_units,
                steals,
                splits,
            } => Json::obj([
                ("type", Json::str("stats")),
                ("ok", Json::Bool(true)),
                ("queued", (*queued).into()),
                ("running", (*running).into()),
                ("finished", (*finished).into()),
                ("workers", (*workers).into()),
                ("queue_capacity", (*queue_capacity).into()),
                ("busy_workers", (*busy_workers).into()),
                ("queued_units", (*queued_units).into()),
                ("steals", (*steals).into()),
                ("splits", (*splits).into()),
            ]),
            Response::Metrics { metrics } => Json::obj([
                ("type", Json::str("metrics")),
                ("ok", Json::Bool(true)),
                ("metrics", metrics.to_json()),
            ]),
            Response::Timeline {
                job,
                events,
                dropped,
            } => Json::obj([
                ("type", Json::str("timeline")),
                ("ok", Json::Bool(true)),
                ("job", (*job).into()),
                (
                    "events",
                    Json::Arr(events.iter().map(TimelineEvent::to_json).collect()),
                ),
                ("dropped", (*dropped).into()),
            ]),
            Response::Health { status, reasons } => Json::obj([
                ("type", Json::str("health")),
                ("ok", Json::Bool(status == "ok")),
                ("status", Json::str(status.clone())),
                (
                    "reasons",
                    Json::Arr(reasons.iter().map(|r| Json::str(r.clone())).collect()),
                ),
            ]),
            Response::Pong => Json::obj([("type", Json::str("pong")), ("ok", Json::Bool(true))]),
        }
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let ty = j.get_str("type").ok_or("response needs a \"type\" field")?;
        let job = || {
            j.get_u64("job")
                .ok_or_else(|| format!("{ty:?} needs a \"job\" id"))
        };
        let phase = || {
            j.get_str("phase")
                .map(String::from)
                .ok_or_else(|| format!("{ty:?} needs a \"phase\""))
        };
        // Absent `code` (a v1 server) maps to `internal`: the client still
        // sees the human-readable reason, just no machine-readable class.
        let code = || ErrorCode::from_wire(j.get_str("code").unwrap_or("internal"));
        match ty {
            "hello" => Ok(Response::Hello {
                version: j.get_u64("version").unwrap_or(1),
                features: j
                    .get("features")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(String::from)
                            .collect()
                    })
                    .unwrap_or_default(),
            }),
            "submitted" => Ok(Response::Submitted {
                job: job()?,
                duplicate: j.get_bool("duplicate").unwrap_or(false),
            }),
            "rejected" => Ok(Response::Rejected {
                code: code(),
                reason: j.get_str("reason").unwrap_or_default().to_string(),
            }),
            "error" => Ok(Response::Error {
                job: j.get_u64("job"),
                code: code(),
                reason: j.get_str("reason").unwrap_or_default().to_string(),
            }),
            "status" => Ok(Response::Status {
                job: job()?,
                phase: phase()?,
                best: j.get_i64("best"),
                age_ms: j.get_u64("age_ms").unwrap_or(0),
            }),
            "cancelled" => Ok(Response::CancelAck {
                job: job()?,
                phase: phase()?,
            }),
            "incumbent" => Ok(Response::Incumbent {
                job: job()?,
                energy: j.get_i64("energy").ok_or("incumbent needs an \"energy\"")?,
                at_ms: j.get_u64("at_ms").unwrap_or(0),
            }),
            "done" => {
                let result = match j.get("result") {
                    None | Some(Json::Null) => None,
                    Some(r) => Some(Box::new(SolveResult::from_json(r)?)),
                };
                Ok(Response::Done {
                    job: job()?,
                    phase: phase()?,
                    result,
                    error: j.get_str("error").map(String::from),
                })
            }
            "stats" => Ok(Response::Stats {
                queued: j.get_u64("queued").unwrap_or(0),
                running: j.get_u64("running").unwrap_or(0),
                finished: j.get_u64("finished").unwrap_or(0),
                workers: j.get_u64("workers").unwrap_or(0),
                queue_capacity: j.get_u64("queue_capacity").unwrap_or(0),
                busy_workers: j.get_u64("busy_workers").unwrap_or(0),
                queued_units: j.get_u64("queued_units").unwrap_or(0),
                steals: j.get_u64("steals").unwrap_or(0),
                splits: j.get_u64("splits").unwrap_or(0),
            }),
            "metrics" => {
                let m = j.get("metrics").ok_or("metrics needs a \"metrics\" set")?;
                Ok(Response::Metrics {
                    metrics: Box::new(MetricSet::from_json(m)?),
                })
            }
            "timeline" => {
                let events = j
                    .get("events")
                    .and_then(Json::as_arr)
                    .ok_or("timeline needs an \"events\" array")?
                    .iter()
                    .map(TimelineEvent::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Timeline {
                    job: job()?,
                    events,
                    dropped: j.get_u64("dropped").unwrap_or(0),
                })
            }
            "health" => Ok(Response::Health {
                status: j
                    .get_str("status")
                    .ok_or("health needs a \"status\"")?
                    .to_string(),
                reasons: j
                    .get("reasons")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(String::from)
                            .collect()
                    })
                    .unwrap_or_default(),
            }),
            "pong" => Ok(Response::Pong),
            other => Err(format!("unknown response type {other:?}")),
        }
    }

    /// Parse one protocol line.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let j = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        Self::from_json(&j)
    }

    /// Encode as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                version: 2,
                tenant: Some("acme".into()),
            },
            Request::Hello {
                version: 1,
                tenant: None,
            },
            Request::Submit(Box::new(JobSpec {
                problem: ProblemSpec::random(16, 2),
                max_batches: Some(100),
                priority: -3,
                ..JobSpec::default()
            })),
            Request::Status(7),
            Request::Cancel(8),
            Request::Result(9),
            Request::Subscribe(10),
            Request::Stats,
            Request::Metrics,
            Request::Timeline(11),
            Request::Health,
            Request::Ping,
        ];
        for r in reqs {
            let line = r.to_json().to_string();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Hello {
                version: 2,
                features: PROTOCOL_FEATURES.iter().map(|f| f.to_string()).collect(),
            },
            Response::Submitted {
                job: 1,
                duplicate: false,
            },
            Response::Submitted {
                job: 1,
                duplicate: true,
            },
            Response::Rejected {
                code: ErrorCode::OverCapacity,
                reason: "queue full".into(),
            },
            Response::Error {
                job: Some(4),
                code: ErrorCode::NoSuchJob,
                reason: "no such job".into(),
            },
            Response::Error {
                job: None,
                code: ErrorCode::BadJson,
                reason: "bad JSON".into(),
            },
            Response::Error {
                job: None,
                code: ErrorCode::Other("from_the_future".into()),
                reason: "novel failure".into(),
            },
            Response::Status {
                job: 2,
                phase: "running".into(),
                best: Some(-31),
                age_ms: 12,
            },
            Response::CancelAck {
                job: 2,
                phase: "cancelled".into(),
            },
            Response::Incumbent {
                job: 2,
                energy: -40,
                at_ms: 3,
            },
            Response::Stats {
                queued: 1,
                running: 2,
                finished: 3,
                workers: 4,
                queue_capacity: 64,
                busy_workers: 3,
                queued_units: 9,
                steals: 17,
                splits: 5,
            },
            Response::Metrics {
                metrics: Box::new({
                    let mut set = dabs_core::MetricSet::new();
                    set.push(dabs_core::Metric::new(
                        "pool.steals",
                        17.0,
                        "count",
                        dabs_core::Direction::HigherIsBetter,
                    ));
                    set
                }),
            },
            Response::Timeline {
                job: 3,
                events: vec![
                    crate::obs::TimelineEvent {
                        at_us: 0,
                        kind: crate::obs::TimelineKind::Admitted,
                    },
                    crate::obs::TimelineEvent {
                        at_us: 40,
                        kind: crate::obs::TimelineKind::UnitStart {
                            unit: 1,
                            worker: 2,
                            queue_wait_us: 40,
                        },
                    },
                    crate::obs::TimelineEvent {
                        at_us: 90,
                        kind: crate::obs::TimelineKind::Terminal {
                            phase: "done".into(),
                        },
                    },
                ],
                dropped: 1,
            },
            Response::Health {
                status: "ok".into(),
                reasons: vec![],
            },
            Response::Health {
                status: "degraded".into(),
                reasons: vec!["wal_errors".into(), "brownout".into()],
            },
            Response::Pong,
        ];
        for r in resps {
            let line = r.encode();
            assert_eq!(Response::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn done_with_result_round_trips() {
        let spec = JobSpec {
            problem: ProblemSpec::random(12, 5),
            max_batches: Some(30),
            ..JobSpec::default()
        };
        let (model, _) = spec.problem.build().unwrap();
        let result = spec
            .build_solver()
            .unwrap()
            .run_sequential(&model, spec.termination());
        let r = Response::Done {
            job: 11,
            phase: "done".into(),
            result: Some(Box::new(result.clone())),
            error: None,
        };
        match Response::parse_line(&r.encode()).unwrap() {
            Response::Done {
                job,
                phase,
                result: Some(back),
                error: None,
            } => {
                assert_eq!(job, 11);
                assert_eq!(phase, "done");
                assert_eq!(back.energy, result.energy);
                assert_eq!(back.best, result.best);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_carry_stable_codes() {
        let code = |line: &str| Request::parse_line(line).unwrap_err().code;
        assert_eq!(code("not json"), ErrorCode::BadJson);
        assert_eq!(code("{}"), ErrorCode::BadRequest);
        assert_eq!(
            code("{\"op\":\"status\"}"),
            ErrorCode::BadRequest,
            "no job id"
        );
        assert_eq!(code("{\"op\":\"warp\"}"), ErrorCode::UnknownOp);
        assert_eq!(
            code(
                "{\"op\":\"submit\",\"job\":{\"problem\":{\"kind\":\"random\"},\"mode\":\"warp\"}}"
            ),
            ErrorCode::BadSpec
        );
        assert_eq!(
            code("{\"op\":\"submit\"}"),
            ErrorCode::BadRequest,
            "no spec"
        );
        assert!(Response::parse_line("{\"type\":\"warp\"}").is_err());
    }

    #[test]
    fn v1_lines_without_v2_fields_still_parse() {
        // A v1 server's lines carry no code/duplicate fields; a v2 client
        // must still accept them with sensible defaults.
        match Response::parse_line("{\"type\":\"submitted\",\"ok\":true,\"job\":9}").unwrap() {
            Response::Submitted { job, duplicate } => {
                assert_eq!(job, 9);
                assert!(!duplicate);
            }
            other => panic!("unexpected {other:?}"),
        }
        match Response::parse_line("{\"type\":\"rejected\",\"ok\":false,\"reason\":\"full\"}")
            .unwrap()
        {
            Response::Rejected { code, reason } => {
                assert_eq!(code, ErrorCode::Internal);
                assert_eq!(reason, "full");
            }
            other => panic!("unexpected {other:?}"),
        }
        // And a v1 server ignores fields it does not know, so a v2 hello
        // request parsing as v1 would fail with unknown_op — the client
        // treats that as "v1 server" rather than an error.
        assert_eq!(
            Request::parse_line("{\"op\":\"hello\",\"version\":2}").unwrap(),
            Request::Hello {
                version: 2,
                tenant: None
            }
        );
    }

    #[test]
    fn error_codes_round_trip_and_pass_through_unknowns() {
        for code in [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::BadSpec,
            ErrorCode::LineTooLong,
            ErrorCode::NotUtf8,
            ErrorCode::UnknownOp,
            ErrorCode::NoSuchJob,
            ErrorCode::OverCapacity,
            ErrorCode::RateLimited,
            ErrorCode::PastDeadline,
            ErrorCode::ShuttingDown,
            ErrorCode::WalDegraded,
            ErrorCode::Quarantined,
            ErrorCode::Shed,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), code);
        }
        assert_eq!(
            ErrorCode::from_wire("subspace_anomaly"),
            ErrorCode::Other("subspace_anomaly".into())
        );
    }
}
