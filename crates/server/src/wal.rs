//! Durable job log: a write-ahead record of admissions and terminals.
//!
//! With `--wal-dir` set, every *accepted* submit appends an `admit` record
//! (spec included) before the client sees its ack, and every terminal
//! transition appends a `terminal` record via the registry's
//! [`TerminalHook`](crate::job::TerminalHook). On restart,
//! [`Wal::open`] replays the log: jobs with an `admit` but no `terminal`
//! were queued or running at crash time and are re-admitted; terminal jobs
//! are re-registered already-finished so late `result`/`status` requests —
//! and idempotent resubmits — still resolve.
//!
//! **Durability contract: at-least-once.** Appends are written immediately
//! but fsynced by a background flusher that coalesces bursts, so a crash
//! can lose the last few records — a job the client was just told about
//! may be forgotten, never half-remembered. Clients that attach an
//! `idempotency_key` can therefore resubmit blindly: a surviving record
//! collapses the retry, a lost one re-admits, and either way exactly one
//! job runs per key.
//!
//! The format is the protocol's own newline-delimited JSON. A torn tail
//! (partial last line from a crash mid-write) is truncated on replay; the
//! log is compacted on every open (live admits plus a bounded window of
//! recent terminals), so it tracks live load, not lifetime history.

use crate::chaos::{chaos_hit, FaultPlan, FaultSite};
use crate::job::JobPhase;
use crate::obs::net_obs;
use crate::protocol::JobId;
use crate::spec::JobSpec;
use dabs_core::SolveResult;
use serde::json::Json;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Terminal records kept across a compaction. Mirrors the registry's
/// retention window: enough for late `result` requests and idempotency
/// collapse, bounded so the log cannot grow with lifetime job count.
pub const WAL_TERMINAL_RETENTION: usize = 1024;

/// One durable log record.
///
/// `Admit` inlines the full spec rather than boxing it: records are
/// encoded to their line and dropped immediately (append) or consumed
/// one at a time (replay) — they are never held in bulk, so the variant
/// size difference buys nothing to optimize.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// The job was accepted by the pool (spec included so replay can
    /// re-admit without any other state).
    Admit { job: JobId, spec: JobSpec },
    /// The job reached a terminal phase.
    Terminal {
        job: JobId,
        phase: JobPhase,
        result: Option<Box<SolveResult>>,
        error: Option<String>,
    },
    /// The job's units panicked repeatedly and the job was quarantined —
    /// it must never be re-executed, including across a restart.
    Quarantine { job: JobId },
}

impl WalRecord {
    pub fn to_json(&self) -> Json {
        match self {
            WalRecord::Admit { job, spec } => Json::obj([
                ("rec", Json::str("admit")),
                ("job", (*job).into()),
                ("spec", spec.to_json()),
            ]),
            WalRecord::Terminal {
                job,
                phase,
                result,
                error,
            } => Json::obj([
                ("rec", Json::str("terminal")),
                ("job", (*job).into()),
                ("phase", Json::str(phase.name())),
                (
                    "result",
                    result.as_ref().map(|r| r.to_json()).unwrap_or(Json::Null),
                ),
                ("error", error.as_ref().map(|e| Json::str(e.clone())).into()),
            ]),
            WalRecord::Quarantine { job } => {
                Json::obj([("rec", Json::str("quarantine")), ("job", (*job).into())])
            }
        }
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let rec = j.get_str("rec").ok_or("wal record needs a \"rec\" field")?;
        let job = j.get_u64("job").ok_or("wal record needs a \"job\" id")?;
        match rec {
            "admit" => {
                let spec = JobSpec::from_json(j.get("spec").ok_or("admit needs a \"spec\"")?)?;
                Ok(WalRecord::Admit { job, spec })
            }
            "terminal" => {
                let phase_name = j.get_str("phase").ok_or("terminal needs a \"phase\"")?;
                let phase = JobPhase::from_name(phase_name)
                    .filter(|p| p.is_terminal())
                    .ok_or_else(|| format!("bad terminal phase {phase_name:?}"))?;
                let result = match j.get("result") {
                    None | Some(Json::Null) => None,
                    Some(r) => Some(Box::new(SolveResult::from_json(r)?)),
                };
                Ok(WalRecord::Terminal {
                    job,
                    phase,
                    result,
                    error: j.get_str("error").map(String::from),
                })
            }
            "quarantine" => Ok(WalRecord::Quarantine { job }),
            other => Err(format!("unknown wal record {other:?}")),
        }
    }

    /// Encode as one log line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }

    /// Parse one log line.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let j = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        Self::from_json(&j)
    }
}

/// A terminal job reconstructed from the log.
#[derive(Debug, Clone)]
pub struct ReplayedTerminal {
    pub job: JobId,
    pub spec: JobSpec,
    pub phase: JobPhase,
    pub result: Option<SolveResult>,
    pub error: Option<String>,
}

/// What [`Wal::open`] recovered from an existing log.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Jobs admitted but not terminal at crash time, in admission order —
    /// these need re-admission.
    pub live: Vec<(JobId, JobSpec)>,
    /// Terminal jobs within the retained window, in admission order.
    pub terminals: Vec<ReplayedTerminal>,
    /// Highest job id seen anywhere in the log (0 when empty); fresh
    /// allocation must resume above it.
    pub max_job_id: JobId,
    /// Bytes dropped from a torn tail (crash mid-append).
    pub truncated_bytes: u64,
    /// Jobs with a durable quarantine record, restricted to ids still in
    /// `live` or `terminals`. A live quarantined job must not be
    /// re-admitted: it registers as failed instead.
    pub quarantined: Vec<JobId>,
}

/// Shared flusher bookkeeping: how many records have been written vs
/// durably synced.
struct FlushState {
    appended: u64,
    synced: u64,
    closed: bool,
}

struct WalInner {
    /// Appender handle; writes go through this under the lock.
    file: Mutex<File>,
    state: Mutex<FlushState>,
    cv: Condvar,
    /// Declared degraded mode: set by any write/fsync failure, cleared by
    /// the next successful sync. While set, the flusher retries the sync
    /// on a short timer so durability heals without waiting for traffic.
    degraded: AtomicBool,
    /// Fault-injection plan (`None` in production: one branch).
    chaos: Option<Arc<FaultPlan>>,
}

/// Append-only handle to the durable job log. Cloning is cheap (shared
/// inner); the flusher thread lives as long as the last clone.
pub struct Wal {
    inner: Arc<WalInner>,
    path: PathBuf,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl Wal {
    /// Open (or create) the log at `dir/jobs.wal`, replaying and compacting
    /// any existing contents. Returns the handle plus what was recovered.
    pub fn open(dir: &Path) -> std::io::Result<(Wal, WalReplay)> {
        Self::open_with_chaos(dir, None)
    }

    /// [`Wal::open`] with a fault-injection plan armed on the write and
    /// fsync sites.
    pub fn open_with_chaos(
        dir: &Path,
        chaos: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<(Wal, WalReplay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("jobs.wal");
        let replay = match File::open(&path) {
            Ok(mut f) => {
                let mut raw = Vec::new();
                f.read_to_end(&mut raw)?;
                Self::replay_bytes(&raw)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => WalReplay::default(),
            Err(e) => return Err(e),
        };
        net_obs().wal_replayed_live.add(replay.live.len() as u64);
        net_obs()
            .wal_replayed_terminal
            .add(replay.terminals.len() as u64);
        net_obs().wal_truncated_bytes.add(replay.truncated_bytes);

        // Compact: rewrite the log as the recovered state (terminal pairs
        // first, then live admits, preserving admission order within each),
        // via tmp-file + rename so a crash mid-compaction leaves the old
        // log intact.
        let tmp = dir.join("jobs.wal.tmp");
        {
            let mut out = File::create(&tmp)?;
            let mut buf = String::new();
            for t in &replay.terminals {
                buf.push_str(
                    &WalRecord::Admit {
                        job: t.job,
                        spec: t.spec.clone(),
                    }
                    .encode(),
                );
                buf.push('\n');
                buf.push_str(
                    &WalRecord::Terminal {
                        job: t.job,
                        phase: t.phase,
                        result: t.result.clone().map(Box::new),
                        error: t.error.clone(),
                    }
                    .encode(),
                );
                buf.push('\n');
                if replay.quarantined.contains(&t.job) {
                    buf.push_str(&WalRecord::Quarantine { job: t.job }.encode());
                    buf.push('\n');
                }
            }
            for (job, spec) in &replay.live {
                buf.push_str(
                    &WalRecord::Admit {
                        job: *job,
                        spec: spec.clone(),
                    }
                    .encode(),
                );
                buf.push('\n');
                if replay.quarantined.contains(job) {
                    buf.push_str(&WalRecord::Quarantine { job: *job }.encode());
                    buf.push('\n');
                }
            }
            out.write_all(buf.as_bytes())?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        // Best effort: make the rename itself durable.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        let sync_handle = file.try_clone()?;
        let inner = Arc::new(WalInner {
            file: Mutex::new(file),
            state: Mutex::new(FlushState {
                appended: 0,
                synced: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            degraded: AtomicBool::new(false),
            chaos,
        });
        let flusher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("dabs-wal".into())
                .spawn(move || flusher_loop(&inner, &sync_handle))
                .expect("spawn wal flusher")
        };
        let wal = Wal {
            inner,
            path,
            flusher: Mutex::new(Some(flusher)),
        };
        Ok((wal, replay))
    }

    /// Parse a log image: good records up to the first torn/garbled line,
    /// folded into recovered state. Terminals beyond the retention window
    /// are dropped oldest-first.
    fn replay_bytes(raw: &[u8]) -> WalReplay {
        let mut replay = WalReplay::default();
        let mut live: Vec<(JobId, JobSpec)> = Vec::new();
        let mut terminals: Vec<ReplayedTerminal> = Vec::new();
        let mut quarantined: Vec<JobId> = Vec::new();
        let mut good = 0usize;
        let mut pos = 0usize;
        while pos < raw.len() {
            let Some(nl) = raw[pos..].iter().position(|&b| b == b'\n') else {
                break; // no newline: torn tail
            };
            let line = &raw[pos..pos + nl];
            let Ok(text) = std::str::from_utf8(line) else {
                break;
            };
            let Ok(rec) = WalRecord::parse_line(text) else {
                break; // garbled record: stop, everything after is suspect
            };
            pos += nl + 1;
            good = pos;
            match rec {
                WalRecord::Admit { job, spec } => {
                    replay.max_job_id = replay.max_job_id.max(job);
                    live.push((job, spec));
                }
                WalRecord::Terminal {
                    job,
                    phase,
                    result,
                    error,
                } => {
                    replay.max_job_id = replay.max_job_id.max(job);
                    if let Some(i) = live.iter().position(|(id, _)| *id == job) {
                        let (_, spec) = live.remove(i);
                        terminals.push(ReplayedTerminal {
                            job,
                            spec,
                            phase,
                            result: result.map(|b| *b),
                            error,
                        });
                    }
                    // A terminal without its admit (lost to an older
                    // compaction) carries nothing replayable: skip.
                }
                WalRecord::Quarantine { job } => {
                    replay.max_job_id = replay.max_job_id.max(job);
                    if !quarantined.contains(&job) {
                        quarantined.push(job);
                    }
                }
            }
        }
        replay.truncated_bytes = (raw.len() - good) as u64;
        if terminals.len() > WAL_TERMINAL_RETENTION {
            let drop = terminals.len() - WAL_TERMINAL_RETENTION;
            terminals.drain(..drop);
        }
        // Quarantine marks for jobs that fell out of the retained window
        // carry nothing actionable; keep only ids replay still knows.
        quarantined.retain(|id| {
            live.iter().any(|(j, _)| j == id) || terminals.iter().any(|t| t.job == *id)
        });
        replay.live = live;
        replay.terminals = terminals;
        replay.quarantined = quarantined;
        replay
    }

    /// Append one record. Returns once the bytes are written (page cache);
    /// the background flusher makes them durable shortly after — see the
    /// module docs for the at-least-once contract.
    pub fn append(&self, rec: &WalRecord) {
        let mut line = rec.encode();
        line.push('\n');
        {
            let mut f = self.inner.file.lock().expect("wal file lock");
            // A failed append (disk full, injected EIO) degrades durability,
            // not service: the job still runs, it just may not survive a
            // crash — but the failure is *declared*, never silent: the
            // error counter ticks and the server reports `degraded` until
            // a later sync proves the log writable again.
            let failed = chaos_hit(&self.inner.chaos, FaultSite::WalWrite)
                || f.write_all(line.as_bytes()).is_err();
            if failed {
                net_obs().wal_errors.inc();
                self.inner.degraded.store(true, Ordering::Relaxed);
                // Wake the flusher so its retry timer starts now.
                self.inner.cv.notify_all();
                return;
            }
        }
        net_obs().wal_appends.inc();
        let mut st = self.inner.state.lock().expect("wal state lock");
        st.appended += 1;
        self.inner.cv.notify_all();
    }

    /// True while the log is in declared degraded mode (a write or fsync
    /// failed and no sync has succeeded since).
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Relaxed)
    }

    /// Block until every record appended so far is durably synced.
    pub fn flush(&self) {
        let mut st = self.inner.state.lock().expect("wal state lock");
        let target = st.appended;
        while st.synced < target && !st.closed {
            st = self.inner.cv.wait(st).expect("wal state lock");
        }
    }

    /// Where the log lives (`<dir>/jobs.wal`).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("wal state lock");
            st.closed = true;
            self.inner.cv.notify_all();
        }
        if let Some(h) = self.flusher.lock().expect("wal flusher lock").take() {
            let _ = h.join();
        }
    }
}

/// Background fsync loop: waits for appends, syncs once per burst (many
/// appends coalesce into one `sync_data`), repeats. On close it performs a
/// final sync so a clean shutdown loses nothing.
///
/// A failed sync is never dropped: it ticks `wal.errors` and flips the
/// shared degraded flag, and while degraded the loop retries on a short
/// timer — even with no new appends — so the server heals (and clears
/// `health: degraded`) as soon as the disk recovers. `synced` still
/// advances past failed targets: the at-least-once contract means
/// [`Wal::flush`] callers unblock with durability *declared* lost rather
/// than hanging on a dead disk.
fn flusher_loop(inner: &WalInner, file: &File) {
    /// Degraded-mode retry cadence.
    const RETRY: Duration = Duration::from_millis(20);
    let mut st = inner.state.lock().expect("wal state lock");
    loop {
        while st.synced == st.appended && !st.closed {
            if inner.degraded.load(Ordering::Relaxed) {
                let (guard, timeout) = inner.cv.wait_timeout(st, RETRY).expect("wal state lock");
                st = guard;
                if timeout.timed_out() {
                    break; // retry the sync now
                }
            } else {
                st = inner.cv.wait(st).expect("wal state lock");
            }
        }
        let healing = st.synced == st.appended;
        if healing && st.closed && !inner.degraded.load(Ordering::Relaxed) {
            return;
        }
        // On a degraded close, the final sync below gets exactly one shot:
        // a dead disk must not wedge Drop.
        let last_chance = st.closed && healing;
        let target = st.appended;
        drop(st);
        let ok = !chaos_hit(&inner.chaos, FaultSite::WalFsync) && file.sync_data().is_ok();
        if ok {
            net_obs().wal_syncs.inc();
            inner.degraded.store(false, Ordering::Relaxed);
        } else {
            net_obs().wal_errors.inc();
            inner.degraded.store(true, Ordering::Relaxed);
        }
        st = inner.state.lock().expect("wal state lock");
        st.synced = st.synced.max(target);
        inner.cv.notify_all();
        if last_chance {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dabs-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn spec(n: usize) -> JobSpec {
        JobSpec {
            problem: ProblemSpec::random(n, 3),
            max_batches: Some(5),
            idempotency_key: Some(format!("key-{n}")),
            ..JobSpec::default()
        }
    }

    #[test]
    fn records_round_trip() {
        let recs = [
            WalRecord::Admit {
                job: 7,
                spec: spec(16),
            },
            WalRecord::Terminal {
                job: 7,
                phase: JobPhase::Done,
                result: None,
                error: None,
            },
            WalRecord::Terminal {
                job: 9,
                phase: JobPhase::Failed,
                result: None,
                error: Some("model build failed".into()),
            },
            WalRecord::Quarantine { job: 9 },
        ];
        for r in recs {
            let line = r.encode();
            assert!(!line.contains('\n'));
            assert_eq!(WalRecord::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn nonterminal_phase_in_terminal_record_is_rejected() {
        assert!(
            WalRecord::parse_line("{\"rec\":\"terminal\",\"job\":1,\"phase\":\"running\"}")
                .is_err()
        );
    }

    #[test]
    fn replay_recovers_live_and_terminal_jobs() {
        let dir = tmp_dir("replay");
        {
            let (wal, replay) = Wal::open(&dir).unwrap();
            assert!(replay.live.is_empty() && replay.terminals.is_empty());
            wal.append(&WalRecord::Admit {
                job: 1,
                spec: spec(16),
            });
            wal.append(&WalRecord::Admit {
                job: 2,
                spec: spec(24),
            });
            wal.append(&WalRecord::Terminal {
                job: 1,
                phase: JobPhase::Done,
                result: None,
                error: None,
            });
            wal.flush();
        }
        let (_wal, replay) = Wal::open(&dir).unwrap();
        assert_eq!(replay.max_job_id, 2);
        assert_eq!(replay.live.len(), 1);
        assert_eq!(replay.live[0].0, 2);
        assert_eq!(replay.terminals.len(), 1);
        assert_eq!(replay.terminals[0].job, 1);
        assert_eq!(replay.terminals[0].phase, JobPhase::Done);
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        {
            let (wal, _) = Wal::open(&dir).unwrap();
            wal.append(&WalRecord::Admit {
                job: 5,
                spec: spec(16),
            });
            wal.flush();
        }
        // Simulate a crash mid-append: a partial record with no newline.
        let path = dir.join("jobs.wal");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"rec\":\"admit\",\"job\":6,\"sp").unwrap();
        drop(f);
        let (_wal, replay) = Wal::open(&dir).unwrap();
        assert_eq!(replay.live.len(), 1, "good prefix survives");
        assert_eq!(replay.live[0].0, 5);
        assert!(replay.truncated_bytes > 0, "torn tail measured");
        // The compacted log parses cleanly now.
        let (_wal2, replay2) = Wal::open(&dir).unwrap();
        assert_eq!(replay2.truncated_bytes, 0);
        assert_eq!(replay2.live.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_a_bounded_terminal_window() {
        let mut raw = String::new();
        for id in 1..=(WAL_TERMINAL_RETENTION as u64 + 40) {
            raw.push_str(
                &WalRecord::Admit {
                    job: id,
                    spec: spec(16),
                }
                .encode(),
            );
            raw.push('\n');
            raw.push_str(
                &WalRecord::Terminal {
                    job: id,
                    phase: JobPhase::Done,
                    result: None,
                    error: None,
                }
                .encode(),
            );
            raw.push('\n');
        }
        let replay = Wal::replay_bytes(raw.as_bytes());
        assert_eq!(replay.terminals.len(), WAL_TERMINAL_RETENTION);
        // Oldest dropped, newest kept.
        assert_eq!(
            replay.terminals.last().unwrap().job,
            WAL_TERMINAL_RETENTION as u64 + 40
        );
        assert_eq!(replay.terminals[0].job, 41);
        let _ = replay;
    }

    /// Spin until the WAL leaves degraded mode (the flusher's retry timer
    /// heals it once injected failures are spent), or fail loudly.
    fn wait_healed(wal: &Wal) {
        for _ in 0..500 {
            if !wal.is_degraded() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("wal did not heal within 2.5s");
    }

    // Regression for the silent-error flusher path: before chaos, a failed
    // `sync_data` vanished — no counter, no flag. Injected fsync failures
    // must tick `wal.errors`, flip degraded, and heal on the next good sync.
    #[test]
    fn injected_fsync_errors_surface_then_heal() {
        let dir = tmp_dir("fsync-err");
        let plan = Arc::new(FaultPlan::parse("seed=1,wal_fsync=1x2").unwrap());
        let before = net_obs().wal_errors.get();
        {
            let (wal, _) = Wal::open_with_chaos(&dir, Some(Arc::clone(&plan))).unwrap();
            wal.append(&WalRecord::Admit {
                job: 1,
                spec: spec(16),
            });
            // flush() must return even though the first sync fails —
            // durability is declared lost, not hung on.
            wal.flush();
            assert!(wal.is_degraded(), "failed fsync must flip degraded");
            wait_healed(&wal);
            assert_eq!(plan.injected(FaultSite::WalFsync), 2);
            assert_eq!(net_obs().wal_errors.get() - before, 2);
            // Healed log keeps working.
            wal.append(&WalRecord::Terminal {
                job: 1,
                phase: JobPhase::Done,
                result: None,
                error: None,
            });
            wal.flush();
            assert!(!wal.is_degraded());
        }
        let (_wal, replay) = Wal::open(&dir).unwrap();
        assert_eq!(replay.terminals.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_error_degrades_and_drops_only_that_record() {
        let dir = tmp_dir("write-err");
        let plan = Arc::new(FaultPlan::parse("seed=1,wal_write=1x1").unwrap());
        {
            let (wal, _) = Wal::open_with_chaos(&dir, Some(plan)).unwrap();
            wal.append(&WalRecord::Admit {
                job: 1,
                spec: spec(16),
            }); // injected EIO: dropped, degraded
            assert!(wal.is_degraded());
            wal.append(&WalRecord::Admit {
                job: 2,
                spec: spec(24),
            }); // cap spent: lands
            wal.flush();
            wait_healed(&wal);
        }
        let (_wal, replay) = Wal::open(&dir).unwrap();
        assert_eq!(replay.live.len(), 1, "only the surviving record replays");
        assert_eq!(replay.live[0].0, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_records_survive_replay_and_compaction() {
        let dir = tmp_dir("quarantine");
        {
            let (wal, _) = Wal::open(&dir).unwrap();
            wal.append(&WalRecord::Admit {
                job: 1,
                spec: spec(16),
            });
            wal.append(&WalRecord::Admit {
                job: 2,
                spec: spec(24),
            });
            wal.append(&WalRecord::Quarantine { job: 1 });
            wal.append(&WalRecord::Terminal {
                job: 2,
                phase: JobPhase::Failed,
                result: None,
                error: Some("unit panicked".into()),
            });
            wal.append(&WalRecord::Quarantine { job: 2 });
            wal.flush();
        }
        // First reopen replays both marks; the compaction it performs must
        // carry them forward for the second reopen.
        for round in 0..2 {
            let (_wal, replay) = Wal::open(&dir).unwrap();
            assert_eq!(replay.live.len(), 1, "round {round}");
            assert_eq!(replay.terminals.len(), 1, "round {round}");
            let mut q = replay.quarantined.clone();
            q.sort_unstable();
            assert_eq!(q, vec![1, 2], "round {round}");
        }
        // A quarantine mark for an unknown job carries nothing replayable.
        let orphan = format!("{}\n", WalRecord::Quarantine { job: 99 }.encode());
        let replay = Wal::replay_bytes(orphan.as_bytes());
        assert!(replay.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
