//! The bounded admission queue: per-job priority, FIFO within a priority,
//! deadline screening at the door.
//!
//! Admission is where multi-tenancy is enforced: the queue is bounded (a
//! burst of 10 000 submits cannot balloon server memory — clients get a
//! `rejected` line and back off), higher-priority jobs overtake lower ones,
//! and a job whose absolute deadline has already passed is refused outright
//! instead of wasting a worker slot.

use crate::protocol::JobId;
use crate::spec::now_unix_ms;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Why `push` refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at capacity.
    Full { capacity: usize },
    /// `deadline_unix_ms` is not in the future.
    PastDeadline { late_by_ms: u64 },
    /// The queue was closed (server shutting down).
    Closed,
    /// Brownout: the pool is shedding low-priority load and this job was
    /// refused (or evicted from the queue) to protect higher-priority work.
    Shed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Full { capacity } => {
                write!(f, "queue full ({capacity} jobs waiting)")
            }
            AdmissionError::PastDeadline { late_by_ms } => {
                write!(f, "deadline already passed {late_by_ms} ms ago")
            }
            AdmissionError::Closed => write!(f, "server is shutting down"),
            AdmissionError::Shed => {
                write!(f, "shed under overload brownout; retry with backoff")
            }
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct QueuedJob {
    priority: i32,
    /// Admission order; lower = earlier.
    seq: u64,
    id: JobId,
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier admission.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct QueueInner {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    closed: bool,
}

/// Blocking bounded priority queue of job ids.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit a job, or refuse with the reason a client can act on.
    pub fn push(
        &self,
        id: JobId,
        priority: i32,
        deadline_unix_ms: Option<u64>,
    ) -> Result<(), AdmissionError> {
        if let Some(deadline) = deadline_unix_ms {
            let now = now_unix_ms();
            if now >= deadline {
                return Err(AdmissionError::PastDeadline {
                    late_by_ms: now - deadline,
                });
            }
        }
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(AdmissionError::Closed);
        }
        if inner.heap.len() >= self.capacity {
            return Err(AdmissionError::Full {
                capacity: self.capacity,
            });
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(QueuedJob { priority, seq, id });
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Take the highest-priority job, blocking while the queue is open and
    /// empty. `None` means the queue is closed and drained — worker exit.
    pub fn pop(&self) -> Option<JobId> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.heap.pop() {
                return Some(job.id);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Close the queue: no further admissions, workers drain what is left
    /// and exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn priority_then_fifo_order() {
        let q = JobQueue::new(16);
        q.push(1, 0, None).unwrap();
        q.push(2, 5, None).unwrap();
        q.push(3, 0, None).unwrap();
        q.push(4, 5, None).unwrap();
        q.push(5, -1, None).unwrap();
        let order: Vec<JobId> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, vec![2, 4, 1, 3, 5]);
    }

    #[test]
    fn capacity_is_enforced() {
        let q = JobQueue::new(2);
        q.push(1, 0, None).unwrap();
        q.push(2, 0, None).unwrap();
        match q.push(3, 9, None) {
            Err(AdmissionError::Full { capacity: 2 }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        q.pop().unwrap();
        q.push(3, 9, None).unwrap();
    }

    #[test]
    fn past_deadline_is_refused() {
        let q = JobQueue::new(4);
        let err = q.push(1, 0, Some(now_unix_ms().saturating_sub(5_000)));
        assert!(
            matches!(err, Err(AdmissionError::PastDeadline { late_by_ms }) if late_by_ms >= 4_000),
            "{err:?}"
        );
        // A future deadline is fine.
        q.push(2, 0, Some(now_unix_ms() + 60_000)).unwrap();
    }

    #[test]
    fn close_unblocks_waiting_workers() {
        let q = Arc::new(JobQueue::new(4));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
        assert!(matches!(q.push(1, 0, None), Err(AdmissionError::Closed)));
    }

    #[test]
    fn close_drains_remaining_jobs() {
        let q = JobQueue::new(4);
        q.push(7, 0, None).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }
}
