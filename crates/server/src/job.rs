//! Job lifecycle: records, phases, watchers, and the registry.
//!
//! A [`JobRecord`] is the runtime's view of one admitted job. It owns the
//! job's [`StopFlag`] (the cancellation hook threaded into the solver's
//! `Termination`), its phase machine, and its *watchers* — per-connection
//! line sinks that receive incumbent updates (`subscribe`) and the terminal
//! `done` notification (`result` and `subscribe` both). Watchers hold the
//! encoded line channel of a connection's writer thread, so publishing is a
//! non-blocking channel send; a watcher whose connection died is pruned on
//! the next send.

use crate::protocol::{JobId, Response};
use crate::spec::JobSpec;
use dabs_core::{SolveResult, StopFlag};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Completed normally.
    Done,
    /// Stopped by a client `cancel` (possibly with a partial result).
    Cancelled,
    /// Deadline passed while the job was still queued (or during worker
    /// setup, before any batch ran).
    Expired,
    /// The spec failed to build or the solver rejected it.
    Failed,
}

impl JobPhase {
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Expired => "expired",
            JobPhase::Failed => "failed",
        }
    }

    /// Terminal phases never transition again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobPhase::Queued | JobPhase::Running)
    }
}

/// Mutable job state guarded by the record's lock.
#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    result: Option<SolveResult>,
    error: Option<String>,
}

/// What a watcher wants to hear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// Only the terminal `done` line (`result` requests).
    ResultOnly,
    /// Every incumbent plus the terminal line (`subscribe` requests).
    Subscribe,
}

struct Watcher {
    sink: Sender<String>,
    kind: WatchKind,
}

/// One admitted job.
pub struct JobRecord {
    pub id: JobId,
    pub spec: JobSpec,
    /// The external-cancellation hook passed into the solver.
    pub stop: Arc<StopFlag>,
    submitted_at: Instant,
    cancel_requested: AtomicBool,
    /// Best energy seen so far (`i64::MAX` = none yet); updated by the
    /// worker's incumbent observer.
    best: AtomicI64,
    state: Mutex<JobState>,
    terminal_cv: Condvar,
    watchers: Mutex<Vec<Watcher>>,
}

impl JobRecord {
    fn new(id: JobId, spec: JobSpec) -> Self {
        Self {
            id,
            spec,
            stop: Arc::new(StopFlag::new()),
            submitted_at: Instant::now(),
            cancel_requested: AtomicBool::new(false),
            best: AtomicI64::new(i64::MAX),
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                result: None,
                error: None,
            }),
            terminal_cv: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
        }
    }

    pub fn phase(&self) -> JobPhase {
        self.state.lock().expect("job state lock").phase
    }

    pub fn best_energy(&self) -> Option<i64> {
        let e = self.best.load(Ordering::Relaxed);
        (e != i64::MAX).then_some(e)
    }

    pub fn age(&self) -> Duration {
        self.submitted_at.elapsed()
    }

    pub fn cancel_requested(&self) -> bool {
        self.cancel_requested.load(Ordering::Relaxed)
    }

    /// Client cancellation: trip the stop flag; a still-queued job goes
    /// terminal immediately (the worker will skip it), a running one stops
    /// at its next batch boundary. Returns the phase after the call.
    pub fn request_cancel(self: &Arc<Self>) -> JobPhase {
        self.cancel_requested.store(true, Ordering::Relaxed);
        self.stop.stop();
        {
            // The Queued check and the Cancelled transition must share one
            // lock acquisition: releasing between them would let a worker
            // claim (or even complete) the job in the window, and a late
            // `finish(Cancelled, None)` would then erase the real outcome.
            let mut st = self.state.lock().expect("job state lock");
            if st.phase != JobPhase::Queued {
                return st.phase;
            }
            st.phase = JobPhase::Cancelled;
        }
        self.notify_terminal();
        JobPhase::Cancelled
    }

    /// Worker claim: `Queued → Running`. Fails when the job went terminal
    /// while waiting (cancelled in queue).
    pub fn mark_running(&self) -> bool {
        let mut st = self.state.lock().expect("job state lock");
        if st.phase == JobPhase::Queued {
            st.phase = JobPhase::Running;
            true
        } else {
            false
        }
    }

    /// Worker-side incumbent delivery: records the energy and fans the line
    /// out to subscribers. Monotonicity comes from the solver's observer
    /// contract (serialized, strictly improving); the watcher lock keeps the
    /// fan-out in that order.
    pub fn publish_incumbent(&self, energy: i64, found_at: Duration) {
        self.best.fetch_min(energy, Ordering::Relaxed);
        let line = Response::Incumbent {
            job: self.id,
            energy,
            at_ms: found_at.as_millis() as u64,
        }
        .encode();
        let mut ws = self.watchers.lock().expect("watchers lock");
        ws.retain(|w| w.kind != WatchKind::Subscribe || w.sink.send(line.clone()).is_ok());
    }

    /// Transition to a terminal phase, wake synchronous waiters, and notify
    /// every watcher with the terminal `done` line. Idempotent: only the
    /// first terminal transition wins (a cancel racing a natural completion
    /// keeps the completion's result).
    pub fn finish(
        self: &Arc<Self>,
        phase: JobPhase,
        result: Option<SolveResult>,
        error: Option<String>,
    ) {
        debug_assert!(phase.is_terminal());
        {
            let mut st = self.state.lock().expect("job state lock");
            if st.phase.is_terminal() {
                return;
            }
            st.phase = phase;
            if let Some(r) = &result {
                self.best.fetch_min(r.energy, Ordering::Relaxed);
            }
            st.result = result;
            st.error = error;
        }
        self.notify_terminal();
    }

    /// Wake synchronous waiters and send the terminal `done` line to every
    /// watcher. Call exactly once, after the terminal transition.
    fn notify_terminal(&self) {
        self.terminal_cv.notify_all();
        let line = self.terminal_line().expect("just finished").encode();
        let mut ws = self.watchers.lock().expect("watchers lock");
        for w in ws.drain(..) {
            let _ = w.sink.send(line.clone());
        }
    }

    /// The terminal `done` response, or `None` while the job is live.
    pub fn terminal_line(&self) -> Option<Response> {
        let st = self.state.lock().expect("job state lock");
        st.phase.is_terminal().then(|| Response::Done {
            job: self.id,
            phase: st.phase.name().to_string(),
            result: st.result.clone().map(Box::new),
            error: st.error.clone(),
        })
    }

    /// Attach a line sink. If the job is already terminal the sink gets the
    /// `done` line immediately and is not registered. A fresh subscriber to
    /// a live job first receives the current best (if any) so its stream
    /// starts from the job's present state.
    pub fn add_watcher(&self, sink: Sender<String>, kind: WatchKind) {
        // Hold the watcher lock across the terminal check so a concurrent
        // finish() cannot slip between the check and the registration.
        let mut ws = self.watchers.lock().expect("watchers lock");
        if let Some(line) = self.terminal_line() {
            let _ = sink.send(line.encode());
            return;
        }
        if kind == WatchKind::Subscribe {
            if let Some(best) = self.best_energy() {
                let snapshot = Response::Incumbent {
                    job: self.id,
                    energy: best,
                    at_ms: self.age().as_millis() as u64,
                }
                .encode();
                let _ = sink.send(snapshot);
            }
        }
        ws.push(Watcher { sink, kind });
    }

    /// Block until the job is terminal (in-process convenience for tests
    /// and embedded servers). Returns `false` on timeout.
    pub fn wait_terminal(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("job state lock");
        while !st.phase.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .terminal_cv
                .wait_timeout(st, deadline - now)
                .expect("job state lock");
            st = guard;
        }
        true
    }

    /// Snapshot `(phase, result, error)` for the status/result paths.
    pub fn snapshot(&self) -> (JobPhase, Option<SolveResult>, Option<String>) {
        let st = self.state.lock().expect("job state lock");
        (st.phase, st.result.clone(), st.error.clone())
    }
}

impl std::fmt::Debug for JobRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRecord")
            .field("id", &self.id)
            .field("phase", &self.phase())
            .field("best", &self.best_energy())
            .finish()
    }
}

/// How many *terminal* jobs the registry keeps around by default so late
/// `status`/`result` requests still find them. Live (queued/running) jobs
/// are never evicted.
const DEFAULT_TERMINAL_RETENTION: usize = 1024;

/// All jobs the server has admitted, by id.
///
/// Bounded: terminal records beyond the retention window are evicted
/// (oldest id first) on admission, so a long-lived server's memory tracks
/// its *live* load, not its lifetime job count. Evicted jobs still count in
/// [`JobRegistry::phase_counts`]' finished total.
#[derive(Debug)]
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<JobId, Arc<JobRecord>>>,
    terminal_retention: usize,
    evicted_terminal: AtomicU64,
}

impl Default for JobRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl JobRegistry {
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_TERMINAL_RETENTION)
    }

    /// Registry keeping at most `terminal_retention` finished jobs.
    pub fn with_retention(terminal_retention: usize) -> Self {
        Self {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
            terminal_retention: terminal_retention.max(1),
            evicted_terminal: AtomicU64::new(0),
        }
    }

    /// Allocate an id and register a fresh record.
    pub fn register(&self, spec: JobSpec) -> Arc<JobRecord> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = Arc::new(JobRecord::new(id, spec));
        let mut jobs = self.jobs.lock().expect("registry lock");
        jobs.insert(id, Arc::clone(&record));
        // Amortized prune: only scan once the map could plausibly hold more
        // terminal records than the retention window.
        if jobs.len() > self.terminal_retention * 2 {
            let mut terminal: Vec<JobId> = jobs
                .values()
                .filter(|r| r.phase().is_terminal())
                .map(|r| r.id)
                .collect();
            if terminal.len() > self.terminal_retention {
                terminal.sort_unstable();
                let excess = terminal.len() - self.terminal_retention;
                for old in terminal.into_iter().take(excess) {
                    jobs.remove(&old);
                }
                self.evicted_terminal
                    .fetch_add(excess as u64, Ordering::Relaxed);
            }
        }
        record
    }

    /// Drop a record that failed admission after registration.
    pub fn evict(&self, id: JobId) {
        self.jobs.lock().expect("registry lock").remove(&id);
    }

    pub fn get(&self, id: JobId) -> Option<Arc<JobRecord>> {
        self.jobs.lock().expect("registry lock").get(&id).cloned()
    }

    /// `(queued, running, terminal)` counts. The terminal count includes
    /// jobs already evicted from the retention window.
    pub fn phase_counts(&self) -> (u64, u64, u64) {
        let jobs = self.jobs.lock().expect("registry lock");
        let mut counts = (0, 0, self.evicted_terminal.load(Ordering::Relaxed));
        for record in jobs.values() {
            match record.phase() {
                JobPhase::Queued => counts.0 += 1,
                JobPhase::Running => counts.1 += 1,
                _ => counts.2 += 1,
            }
        }
        counts
    }

    /// Trip every live job's stop flag (server shutdown).
    pub fn stop_all(&self) {
        let jobs = self.jobs.lock().expect("registry lock");
        for record in jobs.values() {
            record.stop.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn record() -> Arc<JobRecord> {
        JobRegistry::new().register(JobSpec {
            max_batches: Some(10),
            ..JobSpec::default()
        })
    }

    #[test]
    fn cancel_while_queued_is_immediately_terminal() {
        let r = record();
        assert_eq!(r.phase(), JobPhase::Queued);
        assert_eq!(r.request_cancel(), JobPhase::Cancelled);
        assert!(r.stop.is_stopped());
        assert!(!r.mark_running(), "worker must skip a cancelled job");
        assert!(r.wait_terminal(Duration::from_millis(10)));
    }

    #[test]
    fn cancel_vs_worker_claim_race_never_erases_an_outcome() {
        // A cancel thread and a worker thread race on fresh records;
        // whichever transition wins, the loser must observe it and stand
        // down: a claimed job ends Done with its result, an unclaimed one
        // ends Cancelled. (A lock released between request_cancel's Queued
        // check and its transition used to let a late Cancelled/None stamp
        // erase a completed run's result.)
        let spec = JobSpec {
            max_batches: Some(5),
            ..JobSpec::default()
        };
        let (model, _) = spec.problem.build().unwrap();
        let result = spec
            .build_solver()
            .unwrap()
            .run_sequential(&model, spec.termination());
        let reg = JobRegistry::new();
        for _ in 0..200 {
            let r = reg.register(spec.clone());
            let worker = {
                let r = Arc::clone(&r);
                let result = result.clone();
                std::thread::spawn(move || {
                    if r.mark_running() {
                        r.finish(JobPhase::Done, Some(result), None);
                        true
                    } else {
                        false
                    }
                })
            };
            let canceller = {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.request_cancel())
            };
            let claimed = worker.join().unwrap();
            let _ = canceller.join().unwrap();
            let (phase, result, _) = r.snapshot();
            if claimed {
                assert_eq!(phase, JobPhase::Done);
                assert!(result.is_some(), "claimed job lost its result");
            } else {
                assert_eq!(phase, JobPhase::Cancelled);
            }
        }
    }

    #[test]
    fn finish_is_idempotent_first_wins() {
        let r = record();
        assert!(r.mark_running());
        r.finish(JobPhase::Done, None, None);
        r.finish(JobPhase::Failed, None, Some("late".into()));
        let (phase, _, error) = r.snapshot();
        assert_eq!(phase, JobPhase::Done);
        assert!(error.is_none());
    }

    #[test]
    fn watcher_on_terminal_job_gets_done_line_immediately() {
        let r = record();
        r.mark_running();
        r.finish(JobPhase::Done, None, None);
        let (tx, rx) = channel();
        r.add_watcher(tx, WatchKind::ResultOnly);
        let line = rx.try_recv().expect("immediate done line");
        assert!(line.contains("\"done\""), "{line}");
    }

    #[test]
    fn subscriber_gets_snapshot_then_incumbents_then_done() {
        let r = record();
        r.mark_running();
        r.publish_incumbent(-5, Duration::from_millis(1));
        let (tx, rx) = channel();
        r.add_watcher(tx, WatchKind::Subscribe);
        // snapshot of the pre-subscription best
        let snap = Response::parse_line(&rx.try_recv().unwrap()).unwrap();
        assert!(matches!(snap, Response::Incumbent { energy: -5, .. }));
        r.publish_incumbent(-9, Duration::from_millis(2));
        let inc = Response::parse_line(&rx.try_recv().unwrap()).unwrap();
        assert!(matches!(inc, Response::Incumbent { energy: -9, .. }));
        r.finish(JobPhase::Done, None, None);
        let done = Response::parse_line(&rx.try_recv().unwrap()).unwrap();
        assert!(matches!(done, Response::Done { .. }));
    }

    #[test]
    fn result_only_watcher_skips_incumbents() {
        let r = record();
        r.mark_running();
        let (tx, rx) = channel();
        r.add_watcher(tx, WatchKind::ResultOnly);
        r.publish_incumbent(-3, Duration::from_millis(1));
        assert!(rx.try_recv().is_err(), "no incumbent for result watchers");
        r.finish(JobPhase::Cancelled, None, None);
        let line = rx.try_recv().unwrap();
        assert!(line.contains("cancelled"), "{line}");
    }

    #[test]
    fn terminal_jobs_are_evicted_beyond_retention() {
        let reg = JobRegistry::with_retention(4);
        let mut ids = Vec::new();
        for _ in 0..30 {
            let r = reg.register(JobSpec {
                max_batches: Some(1),
                ..JobSpec::default()
            });
            r.mark_running();
            r.finish(JobPhase::Done, None, None);
            ids.push(r.id);
        }
        // Live map stays bounded; the finished total does not lose jobs.
        let live: Vec<bool> = ids.iter().map(|&id| reg.get(id).is_some()).collect();
        assert!(live.iter().filter(|&&l| l).count() <= 9, "{live:?}");
        let (_, _, finished) = reg.phase_counts();
        assert_eq!(finished, 30);
        // The newest terminal job is always still resolvable.
        assert!(reg.get(*ids.last().unwrap()).is_some());
    }

    #[test]
    fn live_jobs_are_never_evicted() {
        let reg = JobRegistry::with_retention(2);
        let keep: Vec<_> = (0..20)
            .map(|_| {
                reg.register(JobSpec {
                    max_batches: Some(1),
                    ..JobSpec::default()
                })
            })
            .collect();
        for r in &keep {
            assert!(reg.get(r.id).is_some(), "queued job {} evicted", r.id);
        }
    }

    #[test]
    fn registry_counts_and_eviction() {
        let reg = JobRegistry::new();
        let a = reg.register(JobSpec {
            max_batches: Some(1),
            ..JobSpec::default()
        });
        let b = reg.register(JobSpec {
            max_batches: Some(1),
            ..JobSpec::default()
        });
        assert_ne!(a.id, b.id);
        assert_eq!(reg.phase_counts(), (2, 0, 0));
        b.mark_running();
        b.finish(JobPhase::Done, None, None);
        assert_eq!(reg.phase_counts(), (1, 0, 1));
        reg.evict(a.id);
        assert!(reg.get(a.id).is_none());
        assert_eq!(reg.phase_counts(), (0, 0, 1));
    }
}
