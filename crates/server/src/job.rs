//! Job lifecycle: records, phases, watchers, and the registry.
//!
//! A [`JobRecord`] is the runtime's view of one admitted job. It owns the
//! job's [`StopFlag`] (the cancellation hook threaded into the solver's
//! `Termination`), its phase machine, and its *watchers* — per-connection
//! line sinks that receive incumbent updates (`subscribe`) and the terminal
//! `done` notification (`result` and `subscribe` both). Watchers hold a
//! [`LineSink`] — the event loop's per-connection outbound queue, or a
//! plain channel for in-process embedding — so publishing is a non-blocking
//! enqueue; a watcher whose connection died is pruned on the next send.

use crate::obs::{TimelineEvent, TimelineKind};
use crate::protocol::{JobId, Response};
use crate::sink::LineSink;
use crate::spec::{now_unix_ms, JobSpec};
use dabs_core::{SolveResult, StopFlag, UnitOutcome};
use dabs_model::{QuboModel, Solution};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Called once per job, at its terminal transition, with the final phase,
/// result, and error. The durable job log hangs off this: the server
/// installs a hook that appends a `terminal` record, so replay knows which
/// admitted jobs need re-running. Runs before watcher fan-out (log first,
/// tell clients second) and must not block for long — it executes on
/// whatever thread drove the transition.
pub type TerminalHook =
    Arc<dyn Fn(JobId, JobPhase, Option<&SolveResult>, Option<&str>) + Send + Sync>;

/// Called once per job when it is quarantined (its units panicked at or
/// beyond [`QUARANTINE_PANIC_THRESHOLD`]). The server installs a hook that
/// appends a durable `quarantine` record so the mark survives restart.
pub type QuarantineHook = Arc<dyn Fn(JobId) + Send + Sync>;

/// How many unit panics a single job is allowed before it is quarantined —
/// refused further execution as a poison job rather than allowed to keep
/// killing workers.
pub const QUARANTINE_PANIC_THRESHOLD: u32 = 3;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Completed normally.
    Done,
    /// Stopped by a client `cancel` (possibly with a partial result).
    Cancelled,
    /// Deadline passed while the job was still queued (or during worker
    /// setup, before any batch ran).
    Expired,
    /// The spec failed to build or the solver rejected it.
    Failed,
}

impl JobPhase {
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Expired => "expired",
            JobPhase::Failed => "failed",
        }
    }

    /// Inverse of [`JobPhase::name`] (WAL replay parses stored phases).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "queued" => JobPhase::Queued,
            "running" => JobPhase::Running,
            "done" => JobPhase::Done,
            "cancelled" => JobPhase::Cancelled,
            "expired" => JobPhase::Expired,
            "failed" => JobPhase::Failed,
            _ => return None,
        })
    }

    /// Terminal phases never transition again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobPhase::Queued | JobPhase::Running)
    }
}

/// Mutable job state guarded by the record's lock.
#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    result: Option<SolveResult>,
    error: Option<String>,
}

/// What a watcher wants to hear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// Only the terminal `done` line (`result` requests).
    ResultOnly,
    /// Every incumbent plus the terminal line (`subscribe` requests).
    Subscribe,
}

struct Watcher {
    sink: Arc<dyn LineSink>,
    kind: WatchKind,
}

/// How one unit of a decomposed job ended (the per-unit analogue of the
/// job-level terminal phase; the fold over all units decides the latter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitEnd {
    /// Ran to its own termination: budget slice exhausted, target reached,
    /// or time window closed.
    Completed,
    /// Cut short by the job's stop flag — client cancel, server shutdown,
    /// or a sibling unit reaching the target.
    Interrupted,
    /// Never executed: revoked while queued (cancel or shutdown drain).
    Revoked,
    /// Model/solver construction failed.
    Failed,
}

/// Aggregation state for a job decomposed into units. `total` can grow
/// while units run (in-job splitting); the fold fires when `finished`
/// catches up to it.
#[derive(Debug, Default)]
struct UnitBook {
    total: u32,
    started: u32,
    finished: u32,
    /// Units genuinely cut short or revoked (not ones that completed their
    /// slice before noticing the flag).
    cut_short: u32,
    failed: Option<String>,
    merged: Option<UnitOutcome>,
}

/// Best solution seen by any unit so far; the warm-start source for
/// incumbent broadcast between units of the same job.
#[derive(Debug, Default)]
struct IncumbentStore {
    energy: Option<i64>,
    solution: Option<Solution>,
}

/// Cap on retained timeline events per job. Past it, new events only move
/// the drop counter — a runaway incumbent stream cannot grow a record
/// unboundedly.
const TIMELINE_CAP: usize = 512;

/// Bounded per-job event log. Timestamps are computed *inside* the log's
/// lock (see [`JobRecord::push_timeline`]), so the stored sequence is
/// monotone by construction.
#[derive(Debug, Default)]
struct TimelineLog {
    events: Vec<TimelineEvent>,
    dropped: u64,
}

/// One admitted job.
pub struct JobRecord {
    pub id: JobId,
    pub spec: JobSpec,
    /// The external-cancellation hook passed into the solver.
    pub stop: Arc<StopFlag>,
    submitted_at: Instant,
    cancel_requested: AtomicBool,
    /// Best energy seen so far (`i64::MAX` = none yet); updated by the
    /// worker's incumbent observer.
    best: AtomicI64,
    state: Mutex<JobState>,
    terminal_cv: Condvar,
    watchers: Mutex<Vec<Watcher>>,
    incumbent: Mutex<IncumbentStore>,
    units: Mutex<UnitBook>,
    timeline: Mutex<TimelineLog>,
    /// Lazily-built model shared by every unit of the job (built by
    /// whichever worker executes the job's first unit).
    model: OnceLock<Result<Arc<QuboModel>, String>>,
    /// When the job's first unit began executing — the origin of the job's
    /// wall-clock window, shared by all units so `time_ms` bounds the job,
    /// not each unit.
    first_unit_start: OnceLock<Instant>,
    /// Installed at registration when the registry has one; fires once at
    /// the terminal transition (see [`TerminalHook`]).
    terminal_hook: OnceLock<TerminalHook>,
    /// Units of this job that panicked under supervision.
    panics: AtomicU32,
    /// Poison mark: once set, the pool refuses to execute any further unit
    /// of this job.
    quarantined: AtomicBool,
    /// Installed at registration when the registry has one; fires once at
    /// the quarantine transition (see [`QuarantineHook`]).
    quarantine_hook: OnceLock<QuarantineHook>,
}

impl JobRecord {
    fn new(id: JobId, spec: JobSpec) -> Self {
        Self {
            id,
            spec,
            stop: Arc::new(StopFlag::new()),
            submitted_at: Instant::now(),
            cancel_requested: AtomicBool::new(false),
            best: AtomicI64::new(i64::MAX),
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                result: None,
                error: None,
            }),
            terminal_cv: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
            incumbent: Mutex::new(IncumbentStore::default()),
            units: Mutex::new(UnitBook::default()),
            timeline: Mutex::new(TimelineLog::default()),
            model: OnceLock::new(),
            first_unit_start: OnceLock::new(),
            terminal_hook: OnceLock::new(),
            panics: AtomicU32::new(0),
            quarantined: AtomicBool::new(false),
            quarantine_hook: OnceLock::new(),
        }
    }

    /// Append one timeline event, stamped with the job's age *under the
    /// log's lock* — two racing pushes therefore cannot record out-of-order
    /// timestamps. Past `TIMELINE_CAP` events, only the drop counter
    /// moves.
    pub fn push_timeline(&self, kind: TimelineKind) {
        let mut log = self.timeline.lock().expect("timeline lock");
        if log.events.len() >= TIMELINE_CAP {
            log.dropped += 1;
            return;
        }
        let at_us = self.submitted_at.elapsed().as_micros() as u64;
        log.events.push(TimelineEvent { at_us, kind });
    }

    /// Copy of the job's timeline so far, plus how many events were dropped
    /// at the cap.
    pub fn timeline_snapshot(&self) -> (Vec<TimelineEvent>, u64) {
        let log = self.timeline.lock().expect("timeline lock");
        (log.events.clone(), log.dropped)
    }

    pub fn phase(&self) -> JobPhase {
        self.state.lock().expect("job state lock").phase
    }

    pub fn best_energy(&self) -> Option<i64> {
        let e = self.best.load(Ordering::Relaxed);
        (e != i64::MAX).then_some(e)
    }

    pub fn age(&self) -> Duration {
        self.submitted_at.elapsed()
    }

    pub fn cancel_requested(&self) -> bool {
        self.cancel_requested.load(Ordering::Relaxed)
    }

    /// Client cancellation: trip the stop flag; a still-queued job goes
    /// terminal immediately (the worker will skip it), a running one stops
    /// at its next batch boundary. Returns the phase after the call.
    pub fn request_cancel(self: &Arc<Self>) -> JobPhase {
        self.cancel_requested.store(true, Ordering::Relaxed);
        self.stop.stop();
        {
            // The Queued check and the Cancelled transition must share one
            // lock acquisition: releasing between them would let a worker
            // claim (or even complete) the job in the window, and a late
            // `finish(Cancelled, None)` would then erase the real outcome.
            let mut st = self.state.lock().expect("job state lock");
            if st.phase != JobPhase::Queued {
                return st.phase;
            }
            st.phase = JobPhase::Cancelled;
        }
        self.notify_terminal();
        JobPhase::Cancelled
    }

    /// Worker claim: `Queued → Running`. Fails when the job went terminal
    /// while waiting (cancelled in queue).
    pub fn mark_running(&self) -> bool {
        let mut st = self.state.lock().expect("job state lock");
        if st.phase == JobPhase::Queued {
            st.phase = JobPhase::Running;
            true
        } else {
            false
        }
    }

    /// Worker-side incumbent delivery: records the energy and fans the line
    /// out to subscribers. With many units publishing concurrently, each
    /// unit's observer stream is only *locally* improving, so the store lock
    /// both filters non-improvements and serializes the fan-out — every
    /// subscriber still sees a strictly improving sequence.
    pub fn publish_incumbent(&self, energy: i64, found_at: Duration) {
        self.offer(None, energy, found_at);
    }

    /// Like [`JobRecord::publish_incumbent`], but also stores the solution
    /// so later units of this job can warm-start from it.
    pub fn offer_incumbent(&self, solution: &Solution, energy: i64, found_at: Duration) {
        self.offer(Some(solution), energy, found_at);
    }

    fn offer(&self, solution: Option<&Solution>, energy: i64, found_at: Duration) {
        let mut inc = self.incumbent.lock().expect("incumbent lock");
        if inc.energy.is_some_and(|e| energy >= e) {
            return;
        }
        inc.energy = Some(energy);
        if let Some(s) = solution {
            inc.solution = Some(s.clone());
        }
        self.best.fetch_min(energy, Ordering::Relaxed);
        self.push_timeline(TimelineKind::Incumbent { energy });
        let line = Response::Incumbent {
            job: self.id,
            energy,
            at_ms: found_at.as_millis() as u64,
        }
        .encode();
        let mut ws = self.watchers.lock().expect("watchers lock");
        ws.retain(|w| w.kind != WatchKind::Subscribe || w.sink.send_line(line.clone()));
    }

    /// Snapshot of the job-wide best `(solution, energy)` — what a freshly
    /// dispatched or stolen unit warm-starts from. `None` until a unit has
    /// published a solution-carrying incumbent.
    pub fn incumbent(&self) -> Option<(Solution, i64)> {
        let inc = self.incumbent.lock().expect("incumbent lock");
        match (&inc.solution, inc.energy) {
            (Some(s), Some(e)) => Some((s.clone(), e)),
            _ => None,
        }
    }

    /// Build (once) and share the job's model. Every unit calls this; only
    /// the first pays the construction cost.
    pub fn model(&self) -> Result<Arc<QuboModel>, String> {
        self.model
            .get_or_init(|| self.spec.problem.build().map(|(m, _name)| Arc::new(m)))
            .clone()
    }

    /// The origin of the job's shared wall-clock window: set when the first
    /// unit begins executing, read by every later unit.
    pub fn unit_clock(&self) -> Instant {
        *self.first_unit_start.get_or_init(Instant::now)
    }

    /// Declare how many units the job was decomposed into. Called once at
    /// admission, before any unit is queued.
    pub fn plan_units(&self, total: u32) {
        {
            let mut book = self.units.lock().expect("units lock");
            debug_assert_eq!(book.total, 0, "units planned twice");
            book.total = total.max(1);
        }
        self.push_timeline(TimelineKind::Admitted);
    }

    /// In-job split: a running unit carved off part of its remaining budget
    /// as a new stealable unit. Returns `false` (and registers nothing) if
    /// the job is already terminal.
    pub fn add_split_unit(&self) -> bool {
        let st = self.state.lock().expect("job state lock");
        if st.phase.is_terminal() {
            return false;
        }
        let mut book = self.units.lock().expect("units lock");
        book.total += 1;
        true
    }

    /// `(total, started, finished)` unit counts.
    pub fn unit_counts(&self) -> (u32, u32, u32) {
        let book = self.units.lock().expect("units lock");
        (book.total, book.started, book.finished)
    }

    /// Worker claim of one unit. The first claim moves the job
    /// `Queued → Running`. Returns the unit's 1-based start ordinal, or
    /// `None` when the job is already terminal (cancelled/expired while its
    /// units sat in queues) — the caller must then drop the unit without
    /// executing or accounting it.
    pub fn begin_unit(&self) -> Option<u32> {
        let mut st = self.state.lock().expect("job state lock");
        match st.phase {
            JobPhase::Queued => st.phase = JobPhase::Running,
            JobPhase::Running => {}
            _ => return None,
        }
        let mut book = self.units.lock().expect("units lock");
        book.started += 1;
        Some(book.started)
    }

    /// Stale-deadline dequeue (checked when a unit is *popped*, not only at
    /// admission): if the deadline has passed and no unit of this job has
    /// ever started, the whole job goes `Expired` now, without burning pool
    /// time. The started-check and the transition share the state lock so a
    /// concurrent `begin_unit` cannot slip in between.
    pub fn expire_if_unstarted(self: &Arc<Self>, reason: &str) -> bool {
        {
            let mut st = self.state.lock().expect("job state lock");
            if st.phase.is_terminal() {
                return false;
            }
            let book = self.units.lock().expect("units lock");
            if book.started > 0 {
                return false;
            }
            drop(book);
            st.phase = JobPhase::Expired;
            st.error = Some(reason.to_string());
        }
        self.notify_terminal();
        true
    }

    /// Account one finished unit and, when it is the job's last, fold the
    /// unit outcomes into the job's terminal phase:
    ///
    /// - any unit failed → `Failed` (first error wins);
    /// - the merged result reached the target → `Done` — sibling units
    ///   tripped by the success's stop broadcast are not interruptions;
    /// - deadline passed with zero batches executed → `Expired` (the
    ///   deadline closed during setup, before any work happened);
    /// - at least one unit genuinely cut short (interrupted mid-run or
    ///   revoked unexecuted — both only arise from cancel, shutdown, or a
    ///   sibling's stop broadcast, and the broadcast case is already `Done`
    ///   above) → `Cancelled`, with the merged best-so-far attached;
    /// - otherwise → `Done`.
    ///
    /// This is PR 2's `classify` lifted over a fold: per-unit completion is
    /// judged by the scheduler against the termination each unit actually
    /// executed under, and the job completes iff its units did.
    pub fn finish_unit(
        self: &Arc<Self>,
        end: UnitEnd,
        outcome: Option<UnitOutcome>,
        error: Option<String>,
    ) {
        let fold = {
            let mut book = self.units.lock().expect("units lock");
            debug_assert!(book.finished < book.total, "more unit ends than units");
            book.finished += 1;
            match end {
                UnitEnd::Completed => {}
                UnitEnd::Interrupted | UnitEnd::Revoked => book.cut_short += 1,
                UnitEnd::Failed => {
                    if book.failed.is_none() {
                        book.failed = error.clone().or_else(|| Some("unit failed".into()));
                    }
                }
            }
            if let Some(o) = outcome {
                book.merged = Some(match book.merged.take() {
                    Some(m) => m.merge(o),
                    None => o,
                });
            }
            if book.finished == book.total {
                Some((book.merged.clone(), book.failed.clone(), book.cut_short))
            } else {
                None
            }
        };
        let Some((merged, failed, cut_short)) = fold else {
            return;
        };
        let reached = merged.as_ref().is_some_and(|m| m.result.reached_target);
        let batches = merged.as_ref().map_or(0, |m| m.result.batches);
        let deadline_passed = self
            .spec
            .deadline_unix_ms
            .is_some_and(|d| now_unix_ms() >= d);
        if failed.is_some() {
            self.finish(JobPhase::Failed, merged.map(|m| m.result), failed);
        } else if reached {
            self.finish(JobPhase::Done, merged.map(|m| m.result), None);
        } else if deadline_passed && batches == 0 {
            self.finish(
                JobPhase::Expired,
                None,
                Some("deadline passed during setup".into()),
            );
        } else if cut_short > 0 {
            self.finish(JobPhase::Cancelled, merged.map(|m| m.result), None);
        } else {
            self.finish(JobPhase::Done, merged.map(|m| m.result), None);
        }
    }

    /// Transition to a terminal phase, wake synchronous waiters, and notify
    /// every watcher with the terminal `done` line. Idempotent: only the
    /// first terminal transition wins (a cancel racing a natural completion
    /// keeps the completion's result).
    pub fn finish(
        self: &Arc<Self>,
        phase: JobPhase,
        result: Option<SolveResult>,
        error: Option<String>,
    ) {
        debug_assert!(phase.is_terminal());
        {
            let mut st = self.state.lock().expect("job state lock");
            if st.phase.is_terminal() {
                return;
            }
            st.phase = phase;
            if let Some(r) = &result {
                self.best.fetch_min(r.energy, Ordering::Relaxed);
            }
            st.result = result;
            st.error = error;
        }
        self.notify_terminal();
    }

    /// Wake synchronous waiters, fire the terminal hook (durable log first),
    /// then send the terminal `done` line to every watcher. Call exactly
    /// once, after the terminal transition.
    fn notify_terminal(&self) {
        let (phase, result, error) = self.snapshot();
        self.push_timeline(TimelineKind::Terminal {
            phase: phase.name().to_string(),
        });
        self.terminal_cv.notify_all();
        if let Some(hook) = self.terminal_hook.get() {
            hook(self.id, phase, result.as_ref(), error.as_deref());
        }
        let line = Response::Done {
            job: self.id,
            phase: phase.name().to_string(),
            result: result.map(Box::new),
            error,
        }
        .encode();
        let mut ws = self.watchers.lock().expect("watchers lock");
        for w in ws.drain(..) {
            let _ = w.sink.send_line(line.clone());
        }
    }

    /// The terminal `done` response, or `None` while the job is live.
    pub fn terminal_line(&self) -> Option<Response> {
        let st = self.state.lock().expect("job state lock");
        st.phase.is_terminal().then(|| Response::Done {
            job: self.id,
            phase: st.phase.name().to_string(),
            result: st.result.clone().map(Box::new),
            error: st.error.clone(),
        })
    }

    /// Attach a line sink. If the job is already terminal the sink gets the
    /// `done` line immediately and is not registered. A fresh subscriber to
    /// a live job first receives the current best (if any) so its stream
    /// starts from the job's present state.
    pub fn add_watcher(&self, sink: Arc<dyn LineSink>, kind: WatchKind) {
        // Hold the watcher lock across the terminal check so a concurrent
        // finish() cannot slip between the check and the registration.
        let mut ws = self.watchers.lock().expect("watchers lock");
        if let Some(line) = self.terminal_line() {
            let _ = sink.send_line(line.encode());
            return;
        }
        if kind == WatchKind::Subscribe {
            if let Some(best) = self.best_energy() {
                let snapshot = Response::Incumbent {
                    job: self.id,
                    energy: best,
                    at_ms: self.age().as_millis() as u64,
                }
                .encode();
                let _ = sink.send_line(snapshot);
            }
        }
        ws.push(Watcher { sink, kind });
    }

    /// Block until the job is terminal (in-process convenience for tests
    /// and embedded servers). Returns `false` on timeout.
    pub fn wait_terminal(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("job state lock");
        while !st.phase.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .terminal_cv
                .wait_timeout(st, deadline - now)
                .expect("job state lock");
            st = guard;
        }
        true
    }

    /// Snapshot `(phase, result, error)` for the status/result paths.
    pub fn snapshot(&self) -> (JobPhase, Option<SolveResult>, Option<String>) {
        let st = self.state.lock().expect("job state lock");
        (st.phase, st.result.clone(), st.error.clone())
    }

    /// Record one panicked unit; returns the cumulative panic count (the
    /// pool compares it against [`QUARANTINE_PANIC_THRESHOLD`]).
    pub fn note_panic(&self) -> u32 {
        self.panics.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// How many of this job's units have panicked so far.
    pub fn panic_count(&self) -> u32 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Whether the job carries the poison mark.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Quarantine the job. Idempotent: only the first call fires the
    /// durable-record hook, and returns `true` so the caller can account
    /// the transition exactly once.
    pub fn quarantine(&self) -> bool {
        if self.quarantined.swap(true, Ordering::Relaxed) {
            return false;
        }
        if let Some(hook) = self.quarantine_hook.get() {
            hook(self.id);
        }
        true
    }

    /// Re-apply a quarantine mark learned from WAL replay, without firing
    /// the hook (the mark is already durable).
    pub fn restore_quarantine(&self) {
        self.quarantined.store(true, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for JobRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRecord")
            .field("id", &self.id)
            .field("phase", &self.phase())
            .field("best", &self.best_energy())
            .finish()
    }
}

/// How many *terminal* jobs the registry keeps around by default so late
/// `status`/`result` requests still find them. Live (queued/running) jobs
/// are never evicted.
const DEFAULT_TERMINAL_RETENTION: usize = 1024;

/// All jobs the server has admitted, by id.
///
/// Bounded: terminal records beyond the retention window are evicted
/// (oldest id first) on admission, so a long-lived server's memory tracks
/// its *live* load, not its lifetime job count. Evicted jobs still count in
/// [`JobRegistry::phase_counts`]' finished total.
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<JobId, Arc<JobRecord>>>,
    /// Idempotency key → original job id, for submits that carry one.
    /// Entries live exactly as long as their job stays in the retention
    /// window (pruning and eviction clean both maps together).
    keys: Mutex<HashMap<String, JobId>>,
    terminal_retention: usize,
    evicted_terminal: AtomicU64,
    hook: Mutex<Option<TerminalHook>>,
    quarantine_hook: Mutex<Option<QuarantineHook>>,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (queued, running, finished) = self.phase_counts();
        f.debug_struct("JobRegistry")
            .field("queued", &queued)
            .field("running", &running)
            .field("finished", &finished)
            .finish()
    }
}

/// Outcome of a keyed registration: a fresh record, or the record the same
/// idempotency key already admitted.
pub enum Registered {
    New(Arc<JobRecord>),
    Duplicate(Arc<JobRecord>),
}

impl Default for JobRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl JobRegistry {
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_TERMINAL_RETENTION)
    }

    /// Registry keeping at most `terminal_retention` finished jobs.
    pub fn with_retention(terminal_retention: usize) -> Self {
        Self {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
            keys: Mutex::new(HashMap::new()),
            terminal_retention: terminal_retention.max(1),
            evicted_terminal: AtomicU64::new(0),
            hook: Mutex::new(None),
            quarantine_hook: Mutex::new(None),
        }
    }

    /// Install the terminal hook copied into every record registered from
    /// now on (the WAL's `terminal` appender). Records registered *before*
    /// — replayed already-terminal jobs — never fire it.
    pub fn set_terminal_hook(&self, hook: TerminalHook) {
        *self.hook.lock().expect("hook lock") = Some(hook);
    }

    /// Install the quarantine hook copied into every record registered from
    /// now on (the WAL's `quarantine` appender).
    pub fn set_quarantine_hook(&self, hook: QuarantineHook) {
        *self.quarantine_hook.lock().expect("hook lock") = Some(hook);
    }

    /// Allocate an id and register a fresh record. Any idempotency key on
    /// the spec is indexed but *not* checked — use
    /// [`JobRegistry::register_keyed`] for collapse-on-duplicate semantics.
    pub fn register(&self, spec: JobSpec) -> Arc<JobRecord> {
        let mut keys = self.keys.lock().expect("keys lock");
        let key = spec.idempotency_key.clone();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = self.insert_locked(id, spec, &mut keys);
        if let Some(k) = key {
            keys.insert(k, id);
        }
        record
    }

    /// Register honoring the spec's idempotency key: if the key already
    /// names a retained job, no new job is created and the original record
    /// comes back as [`Registered::Duplicate`]. The check and the insert
    /// share the key-index lock, so two racing submits with the same key
    /// cannot both admit.
    pub fn register_keyed(&self, spec: JobSpec) -> Registered {
        let mut keys = self.keys.lock().expect("keys lock");
        if let Some(k) = &spec.idempotency_key {
            if let Some(&id) = keys.get(k) {
                if let Some(existing) = self.get(id) {
                    return Registered::Duplicate(existing);
                }
                // The job fell out of the retention window before its key
                // was cleaned; treat the key as fresh.
                keys.remove(k);
            }
        }
        let key = spec.idempotency_key.clone();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = self.insert_locked(id, spec, &mut keys);
        if let Some(k) = key {
            keys.insert(k, id);
        }
        Registered::New(record)
    }

    /// Register under a fixed id (WAL replay): the record keeps its
    /// pre-crash identity, its idempotency key is re-indexed, and fresh-id
    /// allocation resumes above every replayed id.
    pub fn register_with_id(&self, id: JobId, spec: JobSpec) -> Arc<JobRecord> {
        let mut keys = self.keys.lock().expect("keys lock");
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        let key = spec.idempotency_key.clone();
        let record = self.insert_locked(id, spec, &mut keys);
        if let Some(k) = key {
            keys.insert(k, id);
        }
        record
    }

    /// Insert one record. `keys` is the already-held key index: lock order
    /// is keys → jobs, and pruning cleans both maps in one critical
    /// section, so an evicted job's key can never resurrect it.
    fn insert_locked(
        &self,
        id: JobId,
        spec: JobSpec,
        keys: &mut HashMap<String, JobId>,
    ) -> Arc<JobRecord> {
        let record = Arc::new(JobRecord::new(id, spec));
        if let Some(hook) = self.hook.lock().expect("hook lock").clone() {
            let _ = record.terminal_hook.set(hook);
        }
        if let Some(hook) = self.quarantine_hook.lock().expect("hook lock").clone() {
            let _ = record.quarantine_hook.set(hook);
        }
        let mut jobs = self.jobs.lock().expect("registry lock");
        jobs.insert(id, Arc::clone(&record));
        // Amortized prune: only scan once the map could plausibly hold more
        // terminal records than the retention window.
        if jobs.len() > self.terminal_retention * 2 {
            let mut terminal: Vec<JobId> = jobs
                .values()
                .filter(|r| r.phase().is_terminal())
                .map(|r| r.id)
                .collect();
            if terminal.len() > self.terminal_retention {
                terminal.sort_unstable();
                let excess = terminal.len() - self.terminal_retention;
                let evicted: HashSet<JobId> = terminal.into_iter().take(excess).collect();
                for old in &evicted {
                    jobs.remove(old);
                }
                keys.retain(|_, id| !evicted.contains(id));
                self.evicted_terminal
                    .fetch_add(excess as u64, Ordering::Relaxed);
            }
        }
        record
    }

    /// Drop a record that failed admission after registration, along with
    /// its idempotency key (a refused submit must not poison retries).
    pub fn evict(&self, id: JobId) {
        let mut keys = self.keys.lock().expect("keys lock");
        self.jobs.lock().expect("registry lock").remove(&id);
        keys.retain(|_, kid| *kid != id);
    }

    pub fn get(&self, id: JobId) -> Option<Arc<JobRecord>> {
        self.jobs.lock().expect("registry lock").get(&id).cloned()
    }

    /// `(queued, running, terminal)` counts. The terminal count includes
    /// jobs already evicted from the retention window.
    pub fn phase_counts(&self) -> (u64, u64, u64) {
        let jobs = self.jobs.lock().expect("registry lock");
        let mut counts = (0, 0, self.evicted_terminal.load(Ordering::Relaxed));
        for record in jobs.values() {
            match record.phase() {
                JobPhase::Queued => counts.0 += 1,
                JobPhase::Running => counts.1 += 1,
                _ => counts.2 += 1,
            }
        }
        counts
    }

    /// Trip every live job's stop flag (server shutdown).
    pub fn stop_all(&self) {
        let jobs = self.jobs.lock().expect("registry lock");
        for record in jobs.values() {
            record.stop.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn record() -> Arc<JobRecord> {
        JobRegistry::new().register(JobSpec {
            max_batches: Some(10),
            ..JobSpec::default()
        })
    }

    #[test]
    fn cancel_while_queued_is_immediately_terminal() {
        let r = record();
        assert_eq!(r.phase(), JobPhase::Queued);
        assert_eq!(r.request_cancel(), JobPhase::Cancelled);
        assert!(r.stop.is_stopped());
        assert!(!r.mark_running(), "worker must skip a cancelled job");
        assert!(r.wait_terminal(Duration::from_millis(10)));
    }

    #[test]
    fn cancel_vs_worker_claim_race_never_erases_an_outcome() {
        // A cancel thread and a worker thread race on fresh records;
        // whichever transition wins, the loser must observe it and stand
        // down: a claimed job ends Done with its result, an unclaimed one
        // ends Cancelled. (A lock released between request_cancel's Queued
        // check and its transition used to let a late Cancelled/None stamp
        // erase a completed run's result.)
        let spec = JobSpec {
            max_batches: Some(5),
            ..JobSpec::default()
        };
        let (model, _) = spec.problem.build().unwrap();
        let result = spec
            .build_solver()
            .unwrap()
            .run_sequential(&model, spec.termination());
        let reg = JobRegistry::new();
        for _ in 0..200 {
            let r = reg.register(spec.clone());
            let worker = {
                let r = Arc::clone(&r);
                let result = result.clone();
                std::thread::spawn(move || {
                    if r.mark_running() {
                        r.finish(JobPhase::Done, Some(result), None);
                        true
                    } else {
                        false
                    }
                })
            };
            let canceller = {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.request_cancel())
            };
            let claimed = worker.join().unwrap();
            let _ = canceller.join().unwrap();
            let (phase, result, _) = r.snapshot();
            if claimed {
                assert_eq!(phase, JobPhase::Done);
                assert!(result.is_some(), "claimed job lost its result");
            } else {
                assert_eq!(phase, JobPhase::Cancelled);
            }
        }
    }

    #[test]
    fn finish_is_idempotent_first_wins() {
        let r = record();
        assert!(r.mark_running());
        r.finish(JobPhase::Done, None, None);
        r.finish(JobPhase::Failed, None, Some("late".into()));
        let (phase, _, error) = r.snapshot();
        assert_eq!(phase, JobPhase::Done);
        assert!(error.is_none());
    }

    #[test]
    fn watcher_on_terminal_job_gets_done_line_immediately() {
        let r = record();
        r.mark_running();
        r.finish(JobPhase::Done, None, None);
        let (tx, rx) = channel();
        r.add_watcher(Arc::new(tx), WatchKind::ResultOnly);
        let line = rx.try_recv().expect("immediate done line");
        assert!(line.contains("\"done\""), "{line}");
    }

    #[test]
    fn subscriber_gets_snapshot_then_incumbents_then_done() {
        let r = record();
        r.mark_running();
        r.publish_incumbent(-5, Duration::from_millis(1));
        let (tx, rx) = channel();
        r.add_watcher(Arc::new(tx), WatchKind::Subscribe);
        // snapshot of the pre-subscription best
        let snap = Response::parse_line(&rx.try_recv().unwrap()).unwrap();
        assert!(matches!(snap, Response::Incumbent { energy: -5, .. }));
        r.publish_incumbent(-9, Duration::from_millis(2));
        let inc = Response::parse_line(&rx.try_recv().unwrap()).unwrap();
        assert!(matches!(inc, Response::Incumbent { energy: -9, .. }));
        r.finish(JobPhase::Done, None, None);
        let done = Response::parse_line(&rx.try_recv().unwrap()).unwrap();
        assert!(matches!(done, Response::Done { .. }));
    }

    #[test]
    fn result_only_watcher_skips_incumbents() {
        let r = record();
        r.mark_running();
        let (tx, rx) = channel();
        r.add_watcher(Arc::new(tx), WatchKind::ResultOnly);
        r.publish_incumbent(-3, Duration::from_millis(1));
        assert!(rx.try_recv().is_err(), "no incumbent for result watchers");
        r.finish(JobPhase::Cancelled, None, None);
        let line = rx.try_recv().unwrap();
        assert!(line.contains("cancelled"), "{line}");
    }

    #[test]
    fn terminal_jobs_are_evicted_beyond_retention() {
        let reg = JobRegistry::with_retention(4);
        let mut ids = Vec::new();
        for _ in 0..30 {
            let r = reg.register(JobSpec {
                max_batches: Some(1),
                ..JobSpec::default()
            });
            r.mark_running();
            r.finish(JobPhase::Done, None, None);
            ids.push(r.id);
        }
        // Live map stays bounded; the finished total does not lose jobs.
        let live: Vec<bool> = ids.iter().map(|&id| reg.get(id).is_some()).collect();
        assert!(live.iter().filter(|&&l| l).count() <= 9, "{live:?}");
        let (_, _, finished) = reg.phase_counts();
        assert_eq!(finished, 30);
        // The newest terminal job is always still resolvable.
        assert!(reg.get(*ids.last().unwrap()).is_some());
    }

    #[test]
    fn live_jobs_are_never_evicted() {
        let reg = JobRegistry::with_retention(2);
        let keep: Vec<_> = (0..20)
            .map(|_| {
                reg.register(JobSpec {
                    max_batches: Some(1),
                    ..JobSpec::default()
                })
            })
            .collect();
        for r in &keep {
            assert!(reg.get(r.id).is_some(), "queued job {} evicted", r.id);
        }
    }

    #[test]
    fn timeline_records_lifecycle_in_monotone_order() {
        let r = record();
        r.plan_units(1);
        let unit = r.begin_unit().expect("claimable");
        r.push_timeline(TimelineKind::UnitStart {
            unit,
            worker: 0,
            queue_wait_us: 5,
        });
        r.publish_incumbent(-7, Duration::from_millis(1));
        r.publish_incumbent(-3, Duration::from_millis(2)); // non-improvement: no event
        r.finish(JobPhase::Done, None, None);
        let (events, dropped) = r.timeline_snapshot();
        assert_eq!(dropped, 0);
        let kinds: Vec<&TimelineKind> = events.iter().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], TimelineKind::Admitted));
        assert!(matches!(kinds[1], TimelineKind::UnitStart { .. }));
        assert!(matches!(kinds[2], TimelineKind::Incumbent { energy: -7 }));
        assert!(matches!(kinds[3], TimelineKind::Terminal { .. }));
        assert_eq!(kinds.len(), 4, "non-improving incumbent must not log");
        assert!(
            events.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "timestamps must be monotone: {events:?}"
        );
    }

    #[test]
    fn timeline_is_bounded_and_counts_drops() {
        let r = record();
        for i in 0..600u32 {
            r.push_timeline(TimelineKind::UnitStart {
                unit: i,
                worker: 0,
                queue_wait_us: 0,
            });
        }
        let (events, dropped) = r.timeline_snapshot();
        assert_eq!(events.len(), 512);
        assert_eq!(dropped, 88);
    }

    #[test]
    fn registry_counts_and_eviction() {
        let reg = JobRegistry::new();
        let a = reg.register(JobSpec {
            max_batches: Some(1),
            ..JobSpec::default()
        });
        let b = reg.register(JobSpec {
            max_batches: Some(1),
            ..JobSpec::default()
        });
        assert_ne!(a.id, b.id);
        assert_eq!(reg.phase_counts(), (2, 0, 0));
        b.mark_running();
        b.finish(JobPhase::Done, None, None);
        assert_eq!(reg.phase_counts(), (1, 0, 1));
        reg.evict(a.id);
        assert!(reg.get(a.id).is_none());
        assert_eq!(reg.phase_counts(), (0, 0, 1));
    }

    fn keyed_spec(key: &str) -> JobSpec {
        JobSpec {
            max_batches: Some(1),
            idempotency_key: Some(key.into()),
            ..JobSpec::default()
        }
    }

    #[test]
    fn duplicate_idempotency_key_returns_original_record() {
        let reg = JobRegistry::new();
        let first = match reg.register_keyed(keyed_spec("req-1")) {
            Registered::New(r) => r,
            Registered::Duplicate(_) => panic!("fresh key must be new"),
        };
        // Same key collapses — even after the job went terminal.
        first.mark_running();
        first.finish(JobPhase::Done, None, None);
        match reg.register_keyed(keyed_spec("req-1")) {
            Registered::Duplicate(r) => assert_eq!(r.id, first.id),
            Registered::New(_) => panic!("duplicate key must not re-admit"),
        }
        // A different key admits normally.
        match reg.register_keyed(keyed_spec("req-2")) {
            Registered::New(r) => assert_ne!(r.id, first.id),
            Registered::Duplicate(_) => panic!("distinct key collapsed"),
        }
        // No key: always new, never collapses.
        let anon = JobSpec {
            max_batches: Some(1),
            ..JobSpec::default()
        };
        assert!(matches!(
            reg.register_keyed(anon.clone()),
            Registered::New(_)
        ));
        assert!(matches!(reg.register_keyed(anon), Registered::New(_)));
    }

    #[test]
    fn evicted_key_frees_the_idempotency_slot() {
        let reg = JobRegistry::new();
        let first = match reg.register_keyed(keyed_spec("req-9")) {
            Registered::New(r) => r,
            Registered::Duplicate(_) => panic!("fresh"),
        };
        reg.evict(first.id);
        match reg.register_keyed(keyed_spec("req-9")) {
            Registered::New(r) => assert_ne!(r.id, first.id),
            Registered::Duplicate(_) => panic!("evicted job's key must not pin"),
        }
    }

    #[test]
    fn register_with_id_pins_identity_and_bumps_allocation() {
        let reg = JobRegistry::new();
        let replayed = reg.register_with_id(41, keyed_spec("crash-req"));
        assert_eq!(replayed.id, 41);
        // Fresh allocation resumes above the replayed id.
        let fresh = reg.register(JobSpec::default());
        assert_eq!(fresh.id, 42);
        // The replayed job's idempotency key is re-indexed.
        match reg.register_keyed(keyed_spec("crash-req")) {
            Registered::Duplicate(r) => assert_eq!(r.id, 41),
            Registered::New(_) => panic!("replayed key lost"),
        }
    }

    type SeenTerminals = Arc<Mutex<Vec<(JobId, JobPhase, Option<String>)>>>;

    #[test]
    fn terminal_hook_fires_once_with_final_state() {
        let reg = JobRegistry::new();
        let seen: SeenTerminals = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        reg.set_terminal_hook(Arc::new(move |id, phase, _result, error| {
            sink.lock()
                .unwrap()
                .push((id, phase, error.map(String::from)));
        }));
        let r = reg.register(JobSpec {
            max_batches: Some(1),
            ..JobSpec::default()
        });
        r.mark_running();
        r.finish(JobPhase::Failed, None, Some("boom".into()));
        r.finish(JobPhase::Done, None, None); // late duplicate: no second fire
        let events = seen.lock().unwrap();
        assert_eq!(
            *events,
            vec![(r.id, JobPhase::Failed, Some("boom".to_string()))]
        );
    }

    #[test]
    fn quarantine_is_sticky_and_fires_hook_once() {
        let reg = JobRegistry::new();
        let seen: Arc<Mutex<Vec<JobId>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        reg.set_quarantine_hook(Arc::new(move |id| {
            sink.lock().unwrap().push(id);
        }));
        let r = reg.register(JobSpec {
            max_batches: Some(1),
            ..JobSpec::default()
        });
        assert!(!r.is_quarantined());
        assert_eq!(r.note_panic(), 1);
        assert_eq!(r.note_panic(), 2);
        assert_eq!(r.panic_count(), 2);
        assert!(r.quarantine(), "first quarantine call wins");
        assert!(!r.quarantine(), "second call is a no-op");
        assert!(r.is_quarantined());
        assert_eq!(*seen.lock().unwrap(), vec![r.id]);
    }

    #[test]
    fn restore_quarantine_marks_without_firing_hook() {
        let reg = JobRegistry::new();
        let seen: Arc<Mutex<Vec<JobId>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        reg.set_quarantine_hook(Arc::new(move |id| {
            sink.lock().unwrap().push(id);
        }));
        let r = reg.register_with_id(7, JobSpec::default());
        r.restore_quarantine();
        assert!(r.is_quarantined());
        assert!(seen.lock().unwrap().is_empty(), "replay must not re-append");
    }
}
