//! Admission control: per-tenant token-bucket rate limiting.
//!
//! The queue-capacity check in the pool protects the *server*; the token
//! bucket protects *other tenants* — one chatty client cannot monopolize
//! admission slots. Tenancy is declarative: a connection names its tenant
//! in `hello` (or per-submit in the spec), and unnamed traffic shares the
//! `"default"` bucket. Refused submits get `rate_limited`, a retryable
//! code.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Token-bucket parameters, per tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateConfig {
    /// Sustained admissions per second.
    pub rate_per_sec: f64,
    /// Burst headroom: a fresh (or long-idle) tenant can admit this many
    /// back-to-back before the sustained rate applies.
    pub burst: f64,
}

/// The bucket name used when neither the connection nor the spec names a
/// tenant.
pub const DEFAULT_TENANT: &str = "default";

/// Buckets stop being tracked past this many tenants; new tenants then
/// evict the fullest (least-recently-throttled) bucket. Bounds memory
/// against tenant-name cardinality attacks.
const MAX_TRACKED_TENANTS: usize = 4096;

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// Per-tenant token buckets. `None` config disables limiting entirely
/// (every `try_admit` succeeds) — the default, so embedded and test servers
/// never throttle.
#[derive(Debug)]
pub struct TenantRateLimiter {
    cfg: Option<RateConfig>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantRateLimiter {
    pub fn new(cfg: Option<RateConfig>) -> Self {
        Self {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spend one admission token for `tenant`. Returns `false` when the
    /// bucket is empty — the submit must be refused with `rate_limited`.
    pub fn try_admit(&self, tenant: &str) -> bool {
        let Some(cfg) = self.cfg else {
            return true;
        };
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("rate buckets lock");
        if buckets.len() >= MAX_TRACKED_TENANTS && !buckets.contains_key(tenant) {
            // Evict the fullest bucket: it is the one losing least by being
            // reset to a fresh (full) bucket later.
            if let Some(k) = buckets
                .iter()
                .max_by(|a, b| a.1.tokens.total_cmp(&b.1.tokens))
                .map(|(k, _)| k.clone())
            {
                buckets.remove(&k);
            }
        }
        let b = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: cfg.burst.max(1.0),
            last_refill: now,
        });
        let elapsed = now.duration_since(b.last_refill).as_secs_f64();
        b.tokens = (b.tokens + elapsed * cfg.rate_per_sec).min(cfg.burst.max(1.0));
        b.last_refill = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_when_unconfigured() {
        let rl = TenantRateLimiter::new(None);
        for _ in 0..10_000 {
            assert!(rl.try_admit("anyone"));
        }
    }

    #[test]
    fn burst_then_throttle_then_refill() {
        let rl = TenantRateLimiter::new(Some(RateConfig {
            rate_per_sec: 50.0,
            burst: 3.0,
        }));
        assert!(rl.try_admit("t"));
        assert!(rl.try_admit("t"));
        assert!(rl.try_admit("t"));
        assert!(!rl.try_admit("t"), "burst spent");
        std::thread::sleep(Duration::from_millis(40));
        assert!(rl.try_admit("t"), "tokens refill at the sustained rate");
    }

    #[test]
    fn tenants_are_isolated() {
        let rl = TenantRateLimiter::new(Some(RateConfig {
            rate_per_sec: 0.001,
            burst: 1.0,
        }));
        assert!(rl.try_admit("a"));
        assert!(!rl.try_admit("a"));
        assert!(rl.try_admit("b"), "a's exhaustion must not throttle b");
    }

    #[test]
    fn tracked_tenant_count_is_bounded() {
        let rl = TenantRateLimiter::new(Some(RateConfig {
            rate_per_sec: 1.0,
            burst: 2.0,
        }));
        for i in 0..(MAX_TRACKED_TENANTS + 100) {
            let _ = rl.try_admit(&format!("tenant-{i}"));
        }
        assert!(rl.buckets.lock().unwrap().len() <= MAX_TRACKED_TENANTS);
    }
}
