//! Server-side observability: pool counters/histograms and per-job
//! timelines.
//!
//! [`PoolObs`] is the process-wide tally of scheduler activity — every
//! enqueue, pop, steal, split, yield, expiry, and revocation, plus
//! log-bucketed histograms of queue wait and unit run time. It feeds the
//! `metrics` protocol verb (via [`PoolObs::metrics_into`]) next to the
//! solver's own counters.
//!
//! A [`TimelineEvent`] is one step of a job's life as the scheduler saw it:
//! admission, each unit's start (with its measured queue wait) and end,
//! every accepted incumbent, and the terminal transition. The record keeps
//! a bounded log of these (see `JobRecord`); the `timeline` verb ships it
//! to clients, and [`timeline_to_chrome`] reconstructs it as Chrome
//! `trace_event` spans for `dabs trace`.

use dabs_core::{push_hist, MetricSet};
use dabs_obs::{ChromeEvent, Counter, LogHistogram};
use serde::json::Json;
use std::sync::OnceLock;

/// Process-wide pool activity counters and latency histograms.
#[derive(Debug)]
pub struct PoolObs {
    /// Units pushed onto any deque (admission + splits + yields).
    pub enqueued: Counter,
    /// Units taken off a deque by a worker.
    pub popped: Counter,
    /// Pops that took the unit from another worker's deque.
    pub steals: Counter,
    /// Units created by idle-splitting a running unit's budget.
    pub splits: Counter,
    /// Units created by priority-yielding a running unit's remainder.
    pub yields: Counter,
    /// Jobs expired by the stale-deadline dequeue check.
    pub expired: Counter,
    /// Units revoked without execution (cancel, shutdown drain).
    pub revoked: Counter,
    /// Unit executions that panicked and were contained by the worker's
    /// `catch_unwind` supervision boundary.
    pub unit_panics: Counter,
    /// Dead worker threads respawned by the supervisor tick.
    pub worker_restarts: Counter,
    /// Jobs quarantined after repeated unit panics.
    pub quarantined_jobs: Counter,
    /// Queued units shed by brownout to keep admission bounded.
    pub shed_units: Counter,
    /// Microseconds a unit waited in a deque before its pop.
    pub queue_wait_us: LogHistogram,
    /// Microseconds a claimed unit spent executing.
    pub unit_run_us: LogHistogram,
}

impl PoolObs {
    fn new() -> Self {
        Self {
            enqueued: Counter::new(),
            popped: Counter::new(),
            steals: Counter::new(),
            splits: Counter::new(),
            yields: Counter::new(),
            expired: Counter::new(),
            revoked: Counter::new(),
            unit_panics: Counter::new(),
            worker_restarts: Counter::new(),
            quarantined_jobs: Counter::new(),
            shed_units: Counter::new(),
            queue_wait_us: LogHistogram::new(),
            unit_run_us: LogHistogram::new(),
        }
    }

    /// Export everything under `pool.*` names.
    pub fn metrics_into(&self, set: &mut MetricSet) {
        use dabs_core::{Direction, Metric};
        let up = Direction::HigherIsBetter;
        for (name, c) in [
            ("pool.units_enqueued", &self.enqueued),
            ("pool.units_popped", &self.popped),
            ("pool.steals", &self.steals),
            ("pool.splits", &self.splits),
            ("pool.yields", &self.yields),
            ("pool.expired", &self.expired),
            ("pool.revoked", &self.revoked),
            ("pool.unit_panics", &self.unit_panics),
            ("pool.worker_restarts", &self.worker_restarts),
            ("pool.quarantined_jobs", &self.quarantined_jobs),
            ("pool.shed_units", &self.shed_units),
        ] {
            set.push(Metric::new(name, c.get() as f64, "count", up));
        }
        push_hist(set, "pool.queue_wait", "us", &self.queue_wait_us.snapshot());
        push_hist(set, "pool.unit_run", "us", &self.unit_run_us.snapshot());
    }
}

/// The process-wide [`PoolObs`] singleton (every pool in the process —
/// servers, tests, benches — tallies into the same counters, mirroring
/// [`dabs_core::solver_obs`]).
pub fn pool_obs() -> &'static PoolObs {
    static OBS: OnceLock<PoolObs> = OnceLock::new();
    OBS.get_or_init(PoolObs::new)
}

/// Process-wide serving-layer counters: event-loop activity and the durable
/// job log. The event loop drives the `net.*` family; the WAL drives
/// `wal.*`.
#[derive(Debug, Default)]
pub struct NetObs {
    /// Connections accepted by the event loop.
    pub accepted: Counter,
    /// Connections fully closed (all causes).
    pub closed: Counter,
    /// Request lines parsed and dispatched.
    pub lines_in: Counter,
    /// Response lines flushed to sockets.
    pub lines_out: Counter,
    /// Bytes read from sockets.
    pub bytes_in: Counter,
    /// Bytes written to sockets.
    pub bytes_out: Counter,
    /// Times a connection's outbound queue crossed the high-water mark and
    /// its reads were paused.
    pub read_pauses: Counter,
    /// Submits refused by per-tenant rate limiting.
    pub rate_limited: Counter,
    /// Submits collapsed onto an existing job by idempotency key.
    pub duplicate_submits: Counter,
    /// `epoll_wait` wakeups (readiness batches, not events).
    pub polls: Counter,
    /// Records appended to the job log.
    pub wal_appends: Counter,
    /// `sync_data` calls the flusher issued (appends ÷ syncs = batching).
    pub wal_syncs: Counter,
    /// Live (queued/running) jobs re-admitted by replay.
    pub wal_replayed_live: Counter,
    /// Terminal jobs re-registered by replay.
    pub wal_replayed_terminal: Counter,
    /// Torn-tail bytes dropped by replay.
    pub wal_truncated_bytes: Counter,
    /// Job-log write/fsync failures (each one also flips the WAL's
    /// degraded flag until a later sync succeeds).
    pub wal_errors: Counter,
}

impl NetObs {
    /// Export everything under `net.*` / `wal.*` names.
    pub fn metrics_into(&self, set: &mut MetricSet) {
        use dabs_core::{Direction, Metric};
        let up = Direction::HigherIsBetter;
        for (name, c) in [
            ("net.accepted", &self.accepted),
            ("net.closed", &self.closed),
            ("net.lines_in", &self.lines_in),
            ("net.lines_out", &self.lines_out),
            ("net.bytes_in", &self.bytes_in),
            ("net.bytes_out", &self.bytes_out),
            ("net.read_pauses", &self.read_pauses),
            ("net.rate_limited", &self.rate_limited),
            ("net.duplicate_submits", &self.duplicate_submits),
            ("net.polls", &self.polls),
            ("wal.appends", &self.wal_appends),
            ("wal.syncs", &self.wal_syncs),
            ("wal.replayed_live", &self.wal_replayed_live),
            ("wal.replayed_terminal", &self.wal_replayed_terminal),
            ("wal.truncated_bytes", &self.wal_truncated_bytes),
            ("wal.errors", &self.wal_errors),
        ] {
            set.push(Metric::new(name, c.get() as f64, "count", up));
        }
    }
}

/// The process-wide [`NetObs`] singleton, sibling of [`pool_obs`].
pub fn net_obs() -> &'static NetObs {
    static OBS: OnceLock<NetObs> = OnceLock::new();
    OBS.get_or_init(NetObs::default)
}

/// What happened at one point of a job's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineKind {
    /// The job passed admission and its units were queued.
    Admitted,
    /// A worker claimed unit `unit` (1-based start ordinal) after it waited
    /// `queue_wait_us` in a deque.
    UnitStart {
        unit: u32,
        worker: u64,
        queue_wait_us: u64,
    },
    /// Unit `unit` finished with `end` (`completed`/`interrupted`/
    /// `revoked`/`failed`) after executing `batches` batches.
    UnitEnd {
        unit: u32,
        end: String,
        batches: u64,
    },
    /// A strictly improving incumbent was accepted.
    Incumbent { energy: i64 },
    /// The job reached terminal phase `phase`.
    Terminal { phase: String },
}

/// One timestamped step of a job's timeline. `at_us` is microseconds since
/// the job was submitted; events are appended under one lock, so the
/// sequence is monotone by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    pub at_us: u64,
    pub kind: TimelineKind,
}

impl TimelineEvent {
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![("at_us", self.at_us.into())];
        match &self.kind {
            TimelineKind::Admitted => pairs.push(("ev", Json::str("admitted"))),
            TimelineKind::UnitStart {
                unit,
                worker,
                queue_wait_us,
            } => {
                pairs.push(("ev", Json::str("unit_start")));
                pairs.push(("unit", u64::from(*unit).into()));
                pairs.push(("worker", (*worker).into()));
                pairs.push(("queue_wait_us", (*queue_wait_us).into()));
            }
            TimelineKind::UnitEnd { unit, end, batches } => {
                pairs.push(("ev", Json::str("unit_end")));
                pairs.push(("unit", u64::from(*unit).into()));
                pairs.push(("end", Json::str(end.clone())));
                pairs.push(("batches", (*batches).into()));
            }
            TimelineKind::Incumbent { energy } => {
                pairs.push(("ev", Json::str("incumbent")));
                pairs.push(("energy", (*energy).into()));
            }
            TimelineKind::Terminal { phase } => {
                pairs.push(("ev", Json::str("terminal")));
                pairs.push(("phase", Json::str(phase.clone())));
            }
        }
        Json::obj(pairs)
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let at_us = j.get_u64("at_us").ok_or("timeline event needs \"at_us\"")?;
        let ev = j.get_str("ev").ok_or("timeline event needs \"ev\"")?;
        let unit = || {
            j.get_u64("unit")
                .map(|u| u as u32)
                .ok_or_else(|| format!("{ev:?} needs a \"unit\""))
        };
        let kind = match ev {
            "admitted" => TimelineKind::Admitted,
            "unit_start" => TimelineKind::UnitStart {
                unit: unit()?,
                worker: j.get_u64("worker").unwrap_or(0),
                queue_wait_us: j.get_u64("queue_wait_us").unwrap_or(0),
            },
            "unit_end" => TimelineKind::UnitEnd {
                unit: unit()?,
                end: j.get_str("end").unwrap_or("completed").to_string(),
                batches: j.get_u64("batches").unwrap_or(0),
            },
            "incumbent" => TimelineKind::Incumbent {
                energy: j.get_i64("energy").ok_or("incumbent needs \"energy\"")?,
            },
            "terminal" => TimelineKind::Terminal {
                phase: j.get_str("phase").unwrap_or("done").to_string(),
            },
            other => return Err(format!("unknown timeline event {other:?}")),
        };
        Ok(Self { at_us, kind })
    }
}

/// Reconstruct a fetched timeline as Chrome `trace_event`s: one complete
/// span per executed unit (on its worker's lane, preceded by a queue-wait
/// span covering the measured wait), instants for admission, incumbents,
/// and the terminal transition. Shared by `dabs trace` and the e2e tests.
pub fn timeline_to_chrome(job: u64, events: &[TimelineEvent]) -> Vec<ChromeEvent> {
    let instant = |name: &str, ts_us: u64, args: Vec<(String, i64)>| ChromeEvent {
        name: name.to_string(),
        cat: "job".into(),
        ph: 'i',
        ts_us,
        dur_us: 0,
        pid: 1,
        tid: 0,
        args,
    };
    let mut out = Vec::with_capacity(events.len() + 4);
    // Unit starts awaiting their matching end, keyed by start ordinal.
    let mut open: Vec<(u32, u64, u64, u64)> = Vec::new(); // (unit, worker, wait, at)
    for ev in events {
        match &ev.kind {
            TimelineKind::Admitted => {
                out.push(instant(
                    "admitted",
                    ev.at_us,
                    vec![("job".into(), job as i64)],
                ));
            }
            TimelineKind::UnitStart {
                unit,
                worker,
                queue_wait_us,
            } => {
                out.push(ChromeEvent {
                    name: "queue_wait".into(),
                    cat: "pool".into(),
                    ph: 'X',
                    ts_us: ev.at_us.saturating_sub(*queue_wait_us),
                    dur_us: *queue_wait_us,
                    pid: 1,
                    tid: *worker,
                    args: vec![
                        ("job".into(), job as i64),
                        ("unit".into(), i64::from(*unit)),
                    ],
                });
                open.push((*unit, *worker, *queue_wait_us, ev.at_us));
            }
            TimelineKind::UnitEnd { unit, end, batches } => {
                let idx = open.iter().position(|(u, ..)| u == unit);
                let (worker, wait, started) = idx.map_or((0, 0, ev.at_us), |i| {
                    let (_, w, q, at) = open.swap_remove(i);
                    (w, q, at)
                });
                out.push(ChromeEvent {
                    name: format!("unit_run:{end}"),
                    cat: "pool".into(),
                    ph: 'X',
                    ts_us: started,
                    dur_us: ev.at_us.saturating_sub(started),
                    pid: 1,
                    tid: worker,
                    args: vec![
                        ("job".into(), job as i64),
                        ("unit".into(), i64::from(*unit)),
                        ("batches".into(), *batches as i64),
                        ("queue_wait_us".into(), wait as i64),
                    ],
                });
            }
            TimelineKind::Incumbent { energy } => {
                out.push(instant(
                    "incumbent",
                    ev.at_us,
                    vec![("job".into(), job as i64), ("energy".into(), *energy)],
                ));
            }
            TimelineKind::Terminal { phase } => {
                out.push(instant(
                    &format!("terminal:{phase}"),
                    ev.at_us,
                    vec![("job".into(), job as i64)],
                ));
            }
        }
    }
    // A unit still open (job fetched mid-run) renders as a zero-length
    // marker so nothing silently disappears from the trace.
    for (unit, worker, _, at) in open {
        out.push(ChromeEvent {
            name: "unit_run:open".into(),
            cat: "pool".into(),
            ph: 'i',
            ts_us: at,
            dur_us: 0,
            pid: 1,
            tid: worker,
            args: vec![("job".into(), job as i64), ("unit".into(), i64::from(unit))],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timeline() -> Vec<TimelineEvent> {
        vec![
            TimelineEvent {
                at_us: 0,
                kind: TimelineKind::Admitted,
            },
            TimelineEvent {
                at_us: 150,
                kind: TimelineKind::UnitStart {
                    unit: 1,
                    worker: 0,
                    queue_wait_us: 150,
                },
            },
            TimelineEvent {
                at_us: 200,
                kind: TimelineKind::Incumbent { energy: -42 },
            },
            TimelineEvent {
                at_us: 900,
                kind: TimelineKind::UnitEnd {
                    unit: 1,
                    end: "completed".into(),
                    batches: 500,
                },
            },
            TimelineEvent {
                at_us: 950,
                kind: TimelineKind::Terminal {
                    phase: "done".into(),
                },
            },
        ]
    }

    #[test]
    fn timeline_events_round_trip_through_json() {
        for ev in sample_timeline() {
            let line = ev.to_json().to_string();
            let back = TimelineEvent::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn chrome_reconstruction_pairs_start_and_end() {
        let chrome = timeline_to_chrome(7, &sample_timeline());
        let run = chrome
            .iter()
            .find(|e| e.name == "unit_run:completed")
            .expect("unit span");
        assert_eq!(run.ph, 'X');
        assert_eq!(run.ts_us, 150);
        assert_eq!(run.dur_us, 750);
        assert!(run.args.contains(&("batches".to_string(), 500)));
        let wait = chrome.iter().find(|e| e.name == "queue_wait").unwrap();
        assert_eq!(wait.ts_us, 0);
        assert_eq!(wait.dur_us, 150);
        // Instants for admission, incumbent, terminal.
        assert!(chrome.iter().any(|e| e.name == "admitted" && e.ph == 'i'));
        assert!(chrome.iter().any(|e| e.name == "incumbent"));
        assert!(chrome.iter().any(|e| e.name == "terminal:done"));
        // The whole reconstruction renders as a valid trace document.
        let doc = dabs_obs::chrome::write_trace(&chrome);
        assert!(doc.contains("\"traceEvents\""));
    }

    #[test]
    fn unmatched_start_renders_as_open_marker() {
        let events = vec![TimelineEvent {
            at_us: 10,
            kind: TimelineKind::UnitStart {
                unit: 3,
                worker: 2,
                queue_wait_us: 4,
            },
        }];
        let chrome = timeline_to_chrome(1, &events);
        assert!(chrome.iter().any(|e| e.name == "unit_run:open"));
    }

    #[test]
    fn pool_obs_exports_expected_metric_names() {
        let obs = pool_obs();
        obs.enqueued.inc();
        obs.queue_wait_us.record(120);
        let mut set = MetricSet::new();
        obs.metrics_into(&mut set);
        for name in [
            "pool.units_enqueued",
            "pool.units_popped",
            "pool.steals",
            "pool.splits",
            "pool.yields",
            "pool.expired",
            "pool.revoked",
            "pool.unit_panics",
            "pool.worker_restarts",
            "pool.quarantined_jobs",
            "pool.shed_units",
            "pool.queue_wait.p99",
            "pool.unit_run.mean",
        ] {
            assert!(set.get(name).is_some(), "missing {name}");
        }
    }
}
