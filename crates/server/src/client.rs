//! A small blocking client for the line protocol.
//!
//! One `Client` wraps one TCP connection. The protocol allows interleaved
//! streams on a single connection, but this client keeps a discipline that
//! makes blocking reads deterministic: request/response methods consume
//! exactly the lines their request produces, and `wait_result`/`subscribe`
//! loops skip unrelated traffic by job id. The CLI's `loadgen`, the
//! throughput benchmark, and the integration tests all drive the server
//! through this type — it is the reference client implementation.

use crate::protocol::{JobId, Request, Response};
use crate::spec::JobSpec;
use dabs_core::SolveResult;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Blocking protocol client over one connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A job's terminal outcome as seen by a client.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub job: JobId,
    /// `done`, `cancelled`, `expired`, or `failed`.
    pub phase: String,
    pub result: Option<SolveResult>,
    pub error: Option<String>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Optional read timeout for every subsequent receive.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request line.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        let line = request.to_json().to_string();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    /// Receive one response line.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("recv failed: {e}"))?;
            if n == 0 {
                return Err("server closed the connection".into());
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Response::parse_line(trimmed);
            }
        }
    }

    /// Send + receive one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request)?;
        self.recv()
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobId, String> {
        match self.request(&Request::Submit(Box::new(spec.clone())))? {
            Response::Submitted { job } => Ok(job),
            Response::Rejected { reason } => Err(format!("rejected: {reason}")),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Snapshot a job's phase and best energy.
    pub fn status(&mut self, job: JobId) -> Result<(String, Option<i64>), String> {
        match self.request(&Request::Status(job))? {
            Response::Status { phase, best, .. } => Ok((phase, best)),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Cancel a job; returns its phase after the cancel registered.
    pub fn cancel(&mut self, job: JobId) -> Result<String, String> {
        match self.request(&Request::Cancel(job))? {
            Response::CancelAck { phase, .. } => Ok(phase),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Block until the job is terminal and return its outcome. Skips
    /// interleaved lines that belong to other jobs on this connection.
    pub fn wait_result(&mut self, job: JobId) -> Result<JobOutcome, String> {
        self.send(&Request::Result(job))?;
        loop {
            match self.recv()? {
                Response::Done {
                    job: id,
                    phase,
                    result,
                    error,
                } if id == job => {
                    return Ok(JobOutcome {
                        job,
                        phase,
                        result: result.map(|b| *b),
                        error,
                    })
                }
                Response::Error {
                    job: Some(id),
                    reason,
                } if id == job => return Err(reason),
                Response::Error { job: None, reason } => return Err(reason),
                _ => continue, // other jobs' traffic on a shared connection
            }
        }
    }

    /// Subscribe to a job's incumbent stream. Returns the `(energy, at_ms)`
    /// sequence observed and the terminal outcome.
    pub fn subscribe(&mut self, job: JobId) -> Result<(Vec<(i64, u64)>, JobOutcome), String> {
        self.send(&Request::Subscribe(job))?;
        let mut incumbents = Vec::new();
        loop {
            match self.recv()? {
                Response::Incumbent {
                    job: id,
                    energy,
                    at_ms,
                } if id == job => incumbents.push((energy, at_ms)),
                Response::Done {
                    job: id,
                    phase,
                    result,
                    error,
                } if id == job => {
                    return Ok((
                        incumbents,
                        JobOutcome {
                            job,
                            phase,
                            result: result.map(|b| *b),
                            error,
                        },
                    ))
                }
                Response::Error {
                    job: Some(id),
                    reason,
                } if id == job => return Err(reason),
                _ => continue,
            }
        }
    }

    /// Runtime counters.
    pub fn stats(&mut self) -> Result<Response, String> {
        self.request(&Request::Stats)
    }

    /// Full observability snapshot (solver + pool counters, histograms).
    pub fn metrics(&mut self) -> Result<dabs_core::MetricSet, String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { metrics } => Ok(*metrics),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// A job's event timeline and the count of events its bounded log
    /// dropped.
    pub fn timeline(
        &mut self,
        job: JobId,
    ) -> Result<(Vec<crate::obs::TimelineEvent>, u64), String> {
        self.send(&Request::Timeline(job))?;
        loop {
            match self.recv()? {
                Response::Timeline {
                    job: id,
                    events,
                    dropped,
                } if id == job => return Ok((events, dropped)),
                Response::Error {
                    job: Some(id),
                    reason,
                } if id == job => return Err(reason),
                Response::Error { job: None, reason } => return Err(reason),
                _ => continue, // other jobs' traffic on a shared connection
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected response {other:?}")),
        }
    }
}
