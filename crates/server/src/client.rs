//! A small blocking client for the line protocol.
//!
//! One `Client` wraps one TCP connection. The protocol allows interleaved
//! streams on a single connection, but this client keeps a discipline that
//! makes blocking reads deterministic: request/response methods consume
//! exactly the lines their request produces, and `wait_result`/`subscribe`
//! loops skip unrelated traffic by job id. The CLI's `loadgen`, the
//! throughput benchmark, and the integration tests all drive the server
//! through this type — it is the reference client implementation.
//!
//! Two ways in:
//!
//! * [`Client::connect`] — the original constructor: raw connection, no
//!   handshake, `String` errors. Kept verbatim so existing callers compile
//!   unchanged; prefer the builder in new code.
//! * [`Client::builder`] — protocol-v2 aware: performs the `hello`
//!   handshake (version + optional tenant), surfaces failures as typed
//!   [`ClientError`]s carrying the server's stable [`ErrorCode`], and can
//!   stamp submits with generated idempotency keys so retrying a submit
//!   over a fresh connection cannot double-run the job.
//!
//! With [`ClientBuilder::retry`] configured, `try_submit` and
//! `try_wait_result` ride out transient failures on their own: transport
//! errors reconnect (re-running the `hello` handshake), retryable
//! rejections (`over_capacity`, `rate_limited`, `shed`, `wal_degraded`)
//! back off exponentially with deterministic seeded jitter, and the
//! idempotency key generated for the first attempt is reused verbatim so a
//! replayed submit can never double-run the job.

use crate::chaos::splitmix64;
use crate::protocol::{ErrorCode, JobId, Request, Response, PROTOCOL_VERSION};
use crate::spec::JobSpec;
use dabs_core::SolveResult;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Exponential-backoff retry configuration. See [`ClientBuilder::retry`].
#[derive(Debug, Clone, Copy)]
struct RetryPolicy {
    max: u32,
    base: Duration,
    cap: Duration,
}

/// Blocking protocol client over one connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Protocol version settled by `hello` (1 when no handshake was done).
    negotiated: u64,
    /// Prefix for generated idempotency keys; `None` leaves submits unkeyed.
    idempotency_prefix: Option<String>,
    /// Monotonic suffix for generated keys.
    key_seq: u64,
    /// Builder snapshot for reconnecting after a transport failure; `None`
    /// for `Client::connect` clients (no handshake to replay).
    reconnect: Option<ClientBuilder>,
    retry: Option<RetryPolicy>,
    /// SplitMix64 state for deterministic backoff jitter.
    jitter_state: u64,
}

/// A job's terminal outcome as seen by a client.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub job: JobId,
    /// `done`, `cancelled`, `expired`, or `failed`.
    pub phase: String,
    pub result: Option<SolveResult>,
    pub error: Option<String>,
}

/// What `try_submit` learned: the job id and whether the server matched an
/// earlier submit with the same idempotency key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitAck {
    pub job: JobId,
    /// `true` when this submit collapsed onto an existing job — the id is
    /// the *original* job's.
    pub duplicate: bool,
}

/// Typed client errors. The `code` on `Rejected`/`Server` is the server's
/// stable machine-readable error code — match on it instead of parsing
/// reason strings.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, send, receive).
    Io(std::io::Error),
    /// The server refused an admission (`submit`): retryable iff the code
    /// says so (`over_capacity`, `rate_limited`).
    Rejected { code: ErrorCode, reason: String },
    /// The server answered with an error response to a non-submit request.
    Server { code: ErrorCode, reason: String },
    /// The server said something this client cannot interpret — wrong
    /// response for the request, unparseable line, or closed connection.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Rejected { code, reason } => write!(f, "rejected ({code}): {reason}"),
            Self::Server { code, reason } => write!(f, "server error ({code}): {reason}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl ClientError {
    /// `true` when backing off and retrying the same request may succeed:
    /// any transport failure (the connection can be re-dialed), or a
    /// rejection whose code names a transient server condition. Protocol
    /// confusion and hard rejections (bad spec, unknown job, quarantined)
    /// are never retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            Self::Io(_) => true,
            Self::Rejected { code, .. } => matches!(
                code,
                ErrorCode::OverCapacity
                    | ErrorCode::RateLimited
                    | ErrorCode::Shed
                    | ErrorCode::WalDegraded
            ),
            _ => false,
        }
    }
}

/// Configures and opens a v2 [`Client`]. See [`Client::builder`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: String,
    read_timeout: Option<Duration>,
    tenant: Option<String>,
    idempotency_prefix: Option<String>,
    retry: Option<RetryPolicy>,
    retry_seed: u64,
}

impl ClientBuilder {
    /// Read timeout applied to every receive on the connection.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Tenant this connection's submits are accounted to (rate limiting).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Stamp every keyless `try_submit` with a generated idempotency key
    /// `"{prefix}-{seq}"`, making submit retries at-least-once safe.
    pub fn idempotency_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.idempotency_prefix = Some(prefix.into());
        self
    }

    /// Retry `try_submit`/`try_wait_result` up to `max` extra attempts.
    /// Attempt `n` sleeps `min(cap, base * 2^n)` scaled by a deterministic
    /// jitter factor in `[0.5, 1.0)` (seeded — see
    /// [`ClientBuilder::retry_seed`]); transport errors additionally
    /// re-dial the server and replay the `hello` handshake before the next
    /// attempt. Only [`ClientError::is_retryable`] failures are retried.
    pub fn retry(mut self, max: u32, base: Duration, cap: Duration) -> Self {
        self.retry = Some(RetryPolicy { max, base, cap });
        self
    }

    /// Seed for the backoff jitter stream; two clients with the same seed
    /// sleep identical schedules. Defaults to 1.
    pub fn retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }

    /// Connect and perform the `hello` handshake.
    pub fn connect(self) -> Result<Client, ClientError> {
        let (reader, writer, negotiated) = dial(&self)?;
        Ok(Client {
            reader,
            writer,
            negotiated,
            idempotency_prefix: self.idempotency_prefix.clone(),
            key_seq: 0,
            retry: self.retry,
            jitter_state: splitmix64(self.retry_seed),
            reconnect: Some(self),
        })
    }
}

/// Dial + handshake, shared by first connect and retry reconnects.
fn dial(cfg: &ClientBuilder) -> Result<(BufReader<TcpStream>, TcpStream, u64), ClientError> {
    let stream = TcpStream::connect(cfg.addr.as_str())?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(cfg.read_timeout)?;
    let writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let hello = Request::Hello {
        version: PROTOCOL_VERSION,
        tenant: cfg.tenant.clone(),
    };
    send_on(&writer, &hello)?;
    match recv_on(&mut reader)? {
        Response::Hello { version, .. } => Ok((reader, writer, version)),
        other => Err(ClientError::Protocol(format!(
            "expected hello, got {other:?}"
        ))),
    }
}

fn send_on(mut writer: &TcpStream, request: &Request) -> Result<(), ClientError> {
    let line = request.to_json().to_string();
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}

fn recv_on(reader: &mut BufReader<TcpStream>) -> Result<Response, ClientError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            return Response::parse_line(trimmed).map_err(ClientError::Protocol);
        }
    }
}

impl Client {
    /// Raw connection, no handshake, `String` errors — the original
    /// constructor, kept for compatibility. New code should use
    /// [`Client::builder`], which negotiates the protocol version and
    /// returns typed errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            negotiated: 1,
            idempotency_prefix: None,
            key_seq: 0,
            reconnect: None,
            retry: None,
            jitter_state: 1,
        })
    }

    /// Start a protocol-v2 client configuration for `addr`.
    pub fn builder(addr: impl Into<String>) -> ClientBuilder {
        ClientBuilder {
            addr: addr.into(),
            read_timeout: None,
            tenant: None,
            idempotency_prefix: None,
            retry: None,
            retry_seed: 1,
        }
    }

    /// The protocol version settled with the server (1 without handshake).
    pub fn protocol_version(&self) -> u64 {
        self.negotiated
    }

    /// Optional read timeout for every subsequent receive.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request line.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        let line = request.to_json().to_string();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    /// Receive one response line.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("recv failed: {e}"))?;
            if n == 0 {
                return Err("server closed the connection".into());
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Response::parse_line(trimmed);
            }
        }
    }

    /// Send + receive one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request)?;
        self.recv()
    }

    fn request_typed(&mut self, request: &Request) -> Result<Response, ClientError> {
        send_on(&self.writer, request)?;
        recv_on(&mut self.reader)
    }

    /// Sleep the backoff for retry `attempt` (0-based): `min(cap, base*2^n)`
    /// scaled by deterministic jitter in `[0.5, 1.0)`.
    fn backoff(&mut self, attempt: u32) {
        let Some(p) = self.retry else { return };
        let exp = p.base.saturating_mul(1u32 << attempt.min(16));
        let draw = splitmix64(self.jitter_state);
        self.jitter_state = draw;
        let frac = 0.5 + ((draw >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
        let delay = exp.min(p.cap).mul_f64(frac);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Re-dial and replay the handshake after a transport failure. Keeps
    /// the idempotency key sequence — a replayed submit reuses its key.
    fn redial(&mut self) -> Result<(), ClientError> {
        let Some(cfg) = self.reconnect.clone() else {
            return Err(ClientError::Protocol(
                "cannot reconnect: client was built without Client::builder".into(),
            ));
        };
        let (reader, writer, negotiated) = dial(&cfg)?;
        self.reader = reader;
        self.writer = writer;
        self.negotiated = negotiated;
        Ok(())
    }

    /// Run one attempt plus up to `retry.max` retries of `op`, backing off
    /// between attempts and re-dialing after transport failures.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let max = self.retry.map_or(0, |p| p.max);
        let mut attempt = 0u32;
        loop {
            match op(self) {
                Err(e) if e.is_retryable() && attempt < max => {
                    self.backoff(attempt);
                    if matches!(e, ClientError::Io(_)) {
                        // A failed re-dial is itself retryable: the stale
                        // socket stays installed and the next attempt fails
                        // fast with Io, landing back here.
                        let _ = self.redial();
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobId, String> {
        match self.request(&Request::Submit(Box::new(spec.clone())))? {
            Response::Submitted { job, .. } => Ok(job),
            Response::Rejected { reason, .. } => Err(format!("rejected: {reason}")),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Submit with typed errors and duplicate detection. When the builder
    /// configured an idempotency prefix and the spec carries no key, a
    /// generated key is attached so a retry of this submit (even over a new
    /// connection with the same prefix sequence) lands on the same job.
    ///
    /// With [`ClientBuilder::retry`] configured, retryable failures back
    /// off and resubmit automatically — always with the *same* key, so the
    /// server collapses any replay onto the original job.
    pub fn try_submit(&mut self, spec: &JobSpec) -> Result<SubmitAck, ClientError> {
        let mut spec = spec.clone();
        if spec.idempotency_key.is_none() {
            if let Some(prefix) = &self.idempotency_prefix {
                spec.idempotency_key = Some(format!("{prefix}-{}", self.key_seq));
                self.key_seq += 1;
            }
        }
        let request = Request::Submit(Box::new(spec));
        self.with_retry(|c| match c.request_typed(&request)? {
            Response::Submitted { job, duplicate } => Ok(SubmitAck { job, duplicate }),
            Response::Rejected { code, reason } => Err(ClientError::Rejected { code, reason }),
            Response::Error { code, reason, .. } => Err(ClientError::Server { code, reason }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        })
    }

    /// Snapshot a job's phase and best energy.
    pub fn status(&mut self, job: JobId) -> Result<(String, Option<i64>), String> {
        match self.request(&Request::Status(job))? {
            Response::Status { phase, best, .. } => Ok((phase, best)),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Cancel a job; returns its phase after the cancel registered.
    pub fn cancel(&mut self, job: JobId) -> Result<String, String> {
        match self.request(&Request::Cancel(job))? {
            Response::CancelAck { phase, .. } => Ok(phase),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Block until the job is terminal and return its outcome. Skips
    /// interleaved lines that belong to other jobs on this connection.
    pub fn wait_result(&mut self, job: JobId) -> Result<JobOutcome, String> {
        self.send(&Request::Result(job))?;
        loop {
            match self.recv()? {
                Response::Done {
                    job: id,
                    phase,
                    result,
                    error,
                } if id == job => {
                    return Ok(JobOutcome {
                        job,
                        phase,
                        result: result.map(|b| *b),
                        error,
                    })
                }
                Response::Error {
                    job: Some(id),
                    reason,
                    ..
                } if id == job => return Err(reason),
                Response::Error {
                    job: None, reason, ..
                } => return Err(reason),
                _ => continue, // other jobs' traffic on a shared connection
            }
        }
    }

    /// Subscribe to a job's incumbent stream. Returns the `(energy, at_ms)`
    /// sequence observed and the terminal outcome.
    pub fn subscribe(&mut self, job: JobId) -> Result<(Vec<(i64, u64)>, JobOutcome), String> {
        self.send(&Request::Subscribe(job))?;
        let mut incumbents = Vec::new();
        loop {
            match self.recv()? {
                Response::Incumbent {
                    job: id,
                    energy,
                    at_ms,
                } if id == job => incumbents.push((energy, at_ms)),
                Response::Done {
                    job: id,
                    phase,
                    result,
                    error,
                } if id == job => {
                    return Ok((
                        incumbents,
                        JobOutcome {
                            job,
                            phase,
                            result: result.map(|b| *b),
                            error,
                        },
                    ))
                }
                Response::Error {
                    job: Some(id),
                    reason,
                    ..
                } if id == job => return Err(reason),
                _ => continue,
            }
        }
    }

    /// Typed `wait_result`: block until the job is terminal. With
    /// [`ClientBuilder::retry`] configured, a connection lost mid-wait is
    /// re-dialed and the `result` request re-issued — results are replayed
    /// for terminal jobs, so the retry converges.
    pub fn try_wait_result(&mut self, job: JobId) -> Result<JobOutcome, ClientError> {
        self.with_retry(|c| {
            send_on(&c.writer, &Request::Result(job))?;
            loop {
                match recv_on(&mut c.reader)? {
                    Response::Done {
                        job: id,
                        phase,
                        result,
                        error,
                    } if id == job => {
                        return Ok(JobOutcome {
                            job,
                            phase,
                            result: result.map(|b| *b),
                            error,
                        })
                    }
                    Response::Error {
                        job: Some(id),
                        code,
                        reason,
                    } if id == job => return Err(ClientError::Server { code, reason }),
                    Response::Error {
                        job: None,
                        code,
                        reason,
                    } => return Err(ClientError::Server { code, reason }),
                    _ => continue, // other jobs' traffic on a shared connection
                }
            }
        })
    }

    /// Server health: `("ok" | "degraded" | "draining", reasons)`.
    pub fn health(&mut self) -> Result<(String, Vec<String>), ClientError> {
        match self.request_typed(&Request::Health)? {
            Response::Health { status, reasons } => Ok((status, reasons)),
            Response::Error { code, reason, .. } => Err(ClientError::Server { code, reason }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Runtime counters.
    pub fn stats(&mut self) -> Result<Response, String> {
        self.request(&Request::Stats)
    }

    /// Full observability snapshot (solver + pool counters, histograms).
    pub fn metrics(&mut self) -> Result<dabs_core::MetricSet, String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { metrics } => Ok(*metrics),
            Response::Error { reason, .. } => Err(reason),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// A job's event timeline and the count of events its bounded log
    /// dropped.
    pub fn timeline(
        &mut self,
        job: JobId,
    ) -> Result<(Vec<crate::obs::TimelineEvent>, u64), String> {
        self.send(&Request::Timeline(job))?;
        loop {
            match self.recv()? {
                Response::Timeline {
                    job: id,
                    events,
                    dropped,
                } if id == job => return Ok((events, dropped)),
                Response::Error {
                    job: Some(id),
                    reason,
                    ..
                } if id == job => return Err(reason),
                Response::Error {
                    job: None, reason, ..
                } => return Err(reason),
                _ => continue, // other jobs' traffic on a shared connection
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected response {other:?}")),
        }
    }
}
