//! Line sinks: where encoded protocol lines go.
//!
//! Watchers and the dispatcher write *encoded lines*, not sockets: a
//! [`LineSink`] is the one-way door between job-side fan-out and whatever
//! transport carries the bytes. The event loop's per-connection outbound
//! queue implements it; so does a plain `mpsc::Sender<String>`, which keeps
//! in-process embedding (tests, benches) free of any socket machinery.

/// Destination for one encoded protocol line (no trailing newline).
pub trait LineSink: Send + Sync {
    /// Deliver the line. Returns `false` when the sink is gone — its
    /// connection closed — so the caller can prune the watcher. Must not
    /// block: sinks queue, they do not flush.
    fn send_line(&self, line: String) -> bool;

    /// Bytes queued but not yet handed to the transport. Advisory — used
    /// for backpressure accounting; the default says "nothing queued".
    fn queued_bytes(&self) -> usize {
        0
    }
}

/// In-process embedding: an mpsc sender is a sink. (`Sender<String>` is
/// `Sync` since Rust 1.72, so the blanket `Send + Sync` bound holds.)
impl LineSink for std::sync::mpsc::Sender<String> {
    fn send_line(&self, line: String) -> bool {
        self.send(line).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    #[test]
    fn mpsc_sender_is_a_sink_and_reports_closure() {
        let (tx, rx) = channel();
        let sink: Arc<dyn LineSink> = Arc::new(tx);
        assert!(sink.send_line("hello".into()));
        assert_eq!(rx.recv().unwrap(), "hello");
        drop(rx);
        assert!(!sink.send_line("into the void".into()));
    }
}
