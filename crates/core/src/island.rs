//! The island ring (paper §IV-B).
//!
//! One solution pool per device, arranged in a cyclic order. DABS performs
//! no migration between islands; instead the Xrossover operation crosses a
//! local parent with a parent from the *next* pool on the ring, so search
//! trajectories traverse the region between islands and successful results
//! pull the islands together.

use crate::SolutionPool;
use parking_lot::Mutex;
use std::sync::Arc;

/// A ring of shared solution pools.
#[derive(Debug, Clone)]
pub struct IslandRing {
    pools: Vec<Arc<Mutex<SolutionPool>>>,
}

impl IslandRing {
    /// Build a ring of `count` pools with the given capacity/dedup policy.
    pub fn new(count: usize, capacity: usize, dedup: bool) -> Self {
        assert!(count >= 1, "need at least one island");
        Self {
            pools: (0..count)
                .map(|_| Arc::new(Mutex::new(SolutionPool::new(capacity, dedup))))
                .collect(),
        }
    }

    /// Number of islands.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// Always at least one island.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shared handle to pool `i`.
    pub fn pool(&self, i: usize) -> &Arc<Mutex<SolutionPool>> {
        &self.pools[i]
    }

    /// Index of the ring neighbour of island `i` (the Xrossover partner).
    /// With a single island this is `i` itself.
    pub fn neighbor_index(&self, i: usize) -> usize {
        (i + 1) % self.pools.len()
    }

    /// Shared handle to the neighbour pool of island `i`, or `None` when
    /// there is only one island (Xrossover then degrades to Crossover).
    pub fn neighbor(&self, i: usize) -> Option<&Arc<Mutex<SolutionPool>>> {
        (self.pools.len() > 1).then(|| &self.pools[self.neighbor_index(i)])
    }

    /// Best energy across all islands.
    pub fn global_best_energy(&self) -> i64 {
        self.pools
            .iter()
            .filter_map(|p| p.lock().best().map(|e| e.energy))
            .min()
            .unwrap_or(i64::MAX)
    }

    /// Mean of per-pool diversity — low values across all islands signal
    /// the "merged ring" condition where a restart is worthwhile.
    pub fn mean_diversity(&self) -> f64 {
        let sum: f64 = self.pools.iter().map(|p| p.lock().diversity()).sum();
        sum / self.pools.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneticOp, PoolEntry};
    use dabs_model::Solution;
    use dabs_search::MainAlgorithm;

    fn entry(e: i64, n: usize) -> PoolEntry {
        PoolEntry {
            solution: Solution::zeros(n),
            energy: e,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Best,
        }
    }

    #[test]
    fn ring_neighbors_wrap() {
        let ring = IslandRing::new(4, 10, false);
        assert_eq!(ring.neighbor_index(0), 1);
        assert_eq!(ring.neighbor_index(3), 0);
        assert!(ring.neighbor(2).is_some());
    }

    #[test]
    fn single_island_has_no_neighbor() {
        let ring = IslandRing::new(1, 10, false);
        assert!(ring.neighbor(0).is_none());
        assert_eq!(ring.neighbor_index(0), 0);
    }

    #[test]
    fn global_best_spans_islands() {
        let ring = IslandRing::new(3, 5, false);
        ring.pool(0).lock().insert(entry(5, 8));
        ring.pool(1).lock().insert(entry(-9, 8));
        ring.pool(2).lock().insert(entry(2, 8));
        assert_eq!(ring.global_best_energy(), -9);
    }

    #[test]
    fn empty_ring_best_is_infinite() {
        let ring = IslandRing::new(2, 5, false);
        assert_eq!(ring.global_best_energy(), i64::MAX);
    }

    #[test]
    fn pools_are_independently_lockable() {
        let ring = IslandRing::new(2, 5, false);
        let _a = ring.pool(0).lock();
        // locking another pool while holding the first must not deadlock
        let _b = ring.pool(1).lock();
    }
}
