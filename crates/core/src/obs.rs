//! Solver-side observability: sampled hot-loop counters and the bridge
//! from `dabs-obs` snapshots to [`MetricSet`].
//!
//! The flip loop is scan-free-fast and must stay that way, so nothing in
//! the hot path touches a shared atomic. Instead the sequential engine
//! tallies per-batch deltas (flips per strategy, incumbent updates,
//! Δ-segment re-reductions) into a private [`ObsAccumulator`] and
//! publishes to the process-wide [`SolverObs`] only once every
//! `2^OBS_SAMPLE_SHIFT` batches — plus a final flush when the unit ends —
//! so the shared counters lag the truth by at most one sampling window.

use crate::stats::{Direction, Metric, MetricSet, N_ALGOS};
use dabs_obs::{Counter, HistSnapshot, OBS_SAMPLE_MASK};
use dabs_search::MainAlgorithm;
use std::sync::OnceLock;

/// Process-wide solver counters, indexed by [`MainAlgorithm::index`]
/// where per-strategy. Updated at sampling granularity by every engine in
/// the process; read by the server's `metrics` verb and the bench suite.
#[derive(Debug)]
pub struct SolverObs {
    /// Batches completed across all units.
    pub batches: Counter,
    /// Flips executed, per main algorithm.
    pub flips_by_algo: [Counter; N_ALGOS],
    /// Engine-best (incumbent) improvements, per main algorithm — the
    /// improvement-rate signal the ROADMAP's portfolio controller reads.
    pub incumbents_by_algo: [Counter; N_ALGOS],
    /// Lazy Δ-segment re-reductions performed by the segment layer.
    pub seg_reductions: Counter,
    /// Flips executed by bulk (bit-sliced) device legs — a subset of the
    /// per-algorithm totals, split out so dashboards can tell lane-batched
    /// throughput from scalar throughput.
    pub bulk_flips: Counter,
}

impl SolverObs {
    fn new() -> Self {
        Self {
            batches: Counter::new(),
            flips_by_algo: std::array::from_fn(|_| Counter::new()),
            incumbents_by_algo: std::array::from_fn(|_| Counter::new()),
            seg_reductions: Counter::new(),
            bulk_flips: Counter::new(),
        }
    }

    /// Total flips across all strategies.
    pub fn total_flips(&self) -> u64 {
        self.flips_by_algo.iter().map(Counter::get).sum()
    }

    /// Total incumbent improvements across all strategies.
    pub fn total_incumbents(&self) -> u64 {
        self.incumbents_by_algo.iter().map(Counter::get).sum()
    }

    /// Export the counters under `solver.*` names.
    pub fn metrics_into(&self, set: &mut MetricSet) {
        let up = Direction::HigherIsBetter;
        set.push(Metric::new(
            "solver.batches",
            self.batches.get() as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "solver.flips",
            self.total_flips() as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "solver.incumbent_updates",
            self.total_incumbents() as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "solver.seg_reductions",
            self.seg_reductions.get() as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "solver.bulk_flips",
            self.bulk_flips.get() as f64,
            "count",
            up,
        ));
        for algo in MainAlgorithm::ALL {
            let i = algo.index();
            set.push(Metric::new(
                format!("solver.flips.{}", algo.name()),
                self.flips_by_algo[i].get() as f64,
                "count",
                up,
            ));
            set.push(Metric::new(
                format!("solver.incumbent_updates.{}", algo.name()),
                self.incumbents_by_algo[i].get() as f64,
                "count",
                up,
            ));
        }
    }
}

/// The process-wide [`SolverObs`] singleton.
pub fn solver_obs() -> &'static SolverObs {
    static OBS: OnceLock<SolverObs> = OnceLock::new();
    OBS.get_or_init(SolverObs::new)
}

/// Per-engine tally that batches counter updates and publishes to
/// [`solver_obs`] once every `2^OBS_SAMPLE_SHIFT` batches. Dropping the
/// accumulator flushes the tail, so short units still report.
#[derive(Debug, Default)]
pub struct ObsAccumulator {
    batches: u64,
    pend_batches: u64,
    pend_flips: [u64; N_ALGOS],
    pend_incumbents: [u64; N_ALGOS],
    pend_reductions: u64,
    pend_bulk_flips: u64,
}

impl ObsAccumulator {
    /// A fresh accumulator with nothing pending.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed batch: which strategy ran, how many flips and
    /// segment re-reductions it cost, and whether it improved the engine
    /// best. Publishes on 1-in-2^k batches only.
    #[inline]
    pub fn on_batch(&mut self, algo_index: usize, flips: u64, reductions: u64, improved: bool) {
        self.batches += 1;
        self.pend_batches += 1;
        self.pend_flips[algo_index] += flips;
        self.pend_reductions += reductions;
        if improved {
            self.pend_incumbents[algo_index] += 1;
        }
        if self.batches & OBS_SAMPLE_MASK == 0 {
            self.flush();
        }
    }

    /// Record that the batch just tallied by [`Self::on_batch`] ran as a
    /// bulk (bit-sliced) device leg with this many lane flips. Publishes
    /// on the same sampling cadence as `on_batch`.
    #[inline]
    pub fn on_bulk(&mut self, flips: u64) {
        self.pend_bulk_flips += flips;
    }

    /// Publish all pending tallies to the global counters.
    pub fn flush(&mut self) {
        let obs = solver_obs();
        if self.pend_batches > 0 {
            obs.batches.add(self.pend_batches);
            self.pend_batches = 0;
        }
        if self.pend_reductions > 0 {
            obs.seg_reductions.add(self.pend_reductions);
            self.pend_reductions = 0;
        }
        if self.pend_bulk_flips > 0 {
            obs.bulk_flips.add(self.pend_bulk_flips);
            self.pend_bulk_flips = 0;
        }
        for i in 0..N_ALGOS {
            if self.pend_flips[i] > 0 {
                obs.flips_by_algo[i].add(self.pend_flips[i]);
                self.pend_flips[i] = 0;
            }
            if self.pend_incumbents[i] > 0 {
                obs.incumbents_by_algo[i].add(self.pend_incumbents[i]);
                self.pend_incumbents[i] = 0;
            }
        }
    }
}

impl Drop for ObsAccumulator {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Export a histogram snapshot as `{prefix}.count/p50/p99/p999/max/mean`
/// metrics (values in `unit`, e.g. `"us"`). Count is higher-is-better in
/// spirit (more observations, more confidence); the latency-style
/// percentiles are lower-is-better.
pub fn push_hist(set: &mut MetricSet, prefix: &str, unit: &str, snap: &HistSnapshot) {
    set.push(Metric::new(
        format!("{prefix}.count"),
        snap.count() as f64,
        "count",
        Direction::HigherIsBetter,
    ));
    let down = Direction::LowerIsBetter;
    set.push(Metric::new(
        format!("{prefix}.p50"),
        snap.p50() as f64,
        unit,
        down,
    ));
    set.push(Metric::new(
        format!("{prefix}.p99"),
        snap.p99() as f64,
        unit,
        down,
    ));
    set.push(Metric::new(
        format!("{prefix}.p999"),
        snap.p999() as f64,
        unit,
        down,
    ));
    set.push(Metric::new(
        format!("{prefix}.max"),
        snap.max().unwrap_or(0) as f64,
        unit,
        down,
    ));
    set.push(Metric::new(
        format!("{prefix}.mean"),
        snap.mean(),
        unit,
        down,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_obs::LogHistogram;

    // Both tests assert `>=` deltas: the counters are process-global and
    // the test harness runs tests in parallel threads.

    #[test]
    fn accumulator_samples_then_flushes_tail() {
        let obs = solver_obs();
        let before = obs.batches.get();
        {
            let mut acc = ObsAccumulator::new();
            // One short of a full sampling window: only the drop-flush can
            // publish these.
            for _ in 0..OBS_SAMPLE_MASK {
                acc.on_batch(0, 10, 1, false);
            }
        }
        assert!(solver_obs().batches.get() >= before + OBS_SAMPLE_MASK);
    }

    #[test]
    fn accumulator_publishes_on_window_boundary() {
        let obs = solver_obs();
        let before = obs.flips_by_algo[1].get();
        let mut acc = ObsAccumulator::new();
        for _ in 0..=OBS_SAMPLE_MASK {
            acc.on_batch(1, 5, 0, true);
        }
        // The 2^k-th batch hit the boundary and published before any drop.
        assert!(obs.flips_by_algo[1].get() >= before + 5 * (OBS_SAMPLE_MASK + 1));
        drop(acc);
    }

    #[test]
    fn hist_bridge_exports_expected_names() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let mut set = MetricSet::new();
        push_hist(&mut set, "pool.queue_wait", "us", &h.snapshot());
        for suffix in ["count", "p50", "p99", "p999", "max", "mean"] {
            assert!(
                set.get(&format!("pool.queue_wait.{suffix}")).is_some(),
                "missing {suffix}"
            );
        }
        assert_eq!(set.get("pool.queue_wait.count").unwrap().value, 100.0);
        assert_eq!(set.get("pool.queue_wait.max").unwrap().value, 100.0);
    }

    #[test]
    fn solver_obs_metrics_cover_all_strategies() {
        let mut set = MetricSet::new();
        solver_obs().metrics_into(&mut set);
        for algo in MainAlgorithm::ALL {
            assert!(set.get(&format!("solver.flips.{}", algo.name())).is_some());
        }
        assert!(set.get("solver.seg_reductions").is_some());
        assert!(set.get("solver.bulk_flips").is_some());
    }

    #[test]
    fn bulk_flips_flush_with_the_batch_tally() {
        let before = solver_obs().bulk_flips.get();
        {
            let mut acc = ObsAccumulator::new();
            acc.on_batch(0, 640, 0, false);
            acc.on_bulk(640);
        }
        assert!(solver_obs().bulk_flips.get() >= before + 640);
    }
}
