//! JSON wire representation of solver results.
//!
//! One serialization path shared by every process boundary in the tree: the
//! `dabs solve --json` CLI output and the `dabs-server` line protocol both
//! emit exactly [`SolveResult::to_json`], so a client written against one
//! parses the other unchanged. Durations travel as integer microseconds and
//! solutions as `'0'/'1'` bitstrings, keeping every field exact (no floats
//! on the wire).

use crate::{FrequencyReport, GeneticOp, SolveResult};
use dabs_model::Solution;
use dabs_search::MainAlgorithm;
use serde::json::Json;
use std::time::Duration;

/// Look up a main algorithm by its table name (inverse of
/// [`MainAlgorithm::name`]).
pub fn algorithm_by_name(name: &str) -> Option<MainAlgorithm> {
    MainAlgorithm::ALL.into_iter().find(|a| a.name() == name)
}

/// Look up a genetic operation by its table name (inverse of
/// [`GeneticOp::name`]).
pub fn operation_by_name(name: &str) -> Option<GeneticOp> {
    GeneticOp::DABS
        .into_iter()
        .chain([GeneticOp::CrossMutate])
        .find(|o| o.name() == name)
}

fn counts(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&c| Json::from(c)).collect())
}

fn parse_counts(j: &Json, field: &str) -> Result<Vec<u64>, String> {
    j.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {field:?}"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| format!("bad count in {field:?}")))
        .collect()
}

impl SolveResult {
    /// Serialize for the wire. Field names are part of the protocol — see
    /// `docs/PROTOCOL.md`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("energy", Json::from(self.energy)),
            ("best", Json::str(self.best.to_bitstring())),
            (
                "time_to_best_us",
                Json::from(self.time_to_best.as_micros() as u64),
            ),
            ("elapsed_us", Json::from(self.elapsed.as_micros() as u64)),
            ("batches", Json::from(self.batches)),
            ("flips", Json::from(self.flips)),
            ("reached_target", Json::from(self.reached_target)),
            ("restarts", Json::from(u64::from(self.restarts))),
            (
                "first_finder",
                match self.first_finder {
                    Some((algo, op)) => Json::obj([
                        ("algorithm", Json::str(algo.name())),
                        ("operation", Json::str(op.name())),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "frequencies",
                Json::obj([
                    ("algo_executed", counts(&self.frequencies.algo_executed)),
                    ("op_executed", counts(&self.frequencies.op_executed)),
                ]),
            ),
        ])
    }

    /// Reconstruct from the wire form. Strict about required fields so a
    /// protocol drift fails loudly instead of producing a half-empty result.
    pub fn from_json(j: &Json) -> Result<SolveResult, String> {
        let energy = j
            .get_i64("energy")
            .ok_or_else(|| "missing field \"energy\"".to_string())?;
        let bits = j
            .get_str("best")
            .ok_or_else(|| "missing field \"best\"".to_string())?;
        if bits.chars().any(|c| c != '0' && c != '1') {
            return Err("field \"best\" is not a bitstring".into());
        }
        let us = |field: &str| -> Result<Duration, String> {
            j.get_u64(field)
                .map(Duration::from_micros)
                .ok_or_else(|| format!("missing field {field:?}"))
        };
        let first_finder = match j.get("first_finder") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let algo = f
                    .get_str("algorithm")
                    .and_then(algorithm_by_name)
                    .ok_or_else(|| "bad first_finder.algorithm".to_string())?;
                let op = f
                    .get_str("operation")
                    .and_then(operation_by_name)
                    .ok_or_else(|| "bad first_finder.operation".to_string())?;
                Some((algo, op))
            }
        };
        let freqs = j
            .get("frequencies")
            .ok_or_else(|| "missing field \"frequencies\"".to_string())?;
        Ok(SolveResult {
            best: Solution::from_bitstring(bits),
            energy,
            time_to_best: us("time_to_best_us")?,
            elapsed: us("elapsed_us")?,
            batches: j
                .get_u64("batches")
                .ok_or_else(|| "missing field \"batches\"".to_string())?,
            flips: j
                .get_u64("flips")
                .ok_or_else(|| "missing field \"flips\"".to_string())?,
            reached_target: j.get_bool("reached_target").unwrap_or(false),
            frequencies: FrequencyReport {
                algo_executed: parse_counts(freqs, "algo_executed")?,
                op_executed: parse_counts(freqs, "op_executed")?,
            },
            first_finder,
            restarts: j.get_u64("restarts").unwrap_or(0) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DabsConfig, DabsSolver, Termination};
    use dabs_model::QuboBuilder;

    fn sample_result() -> SolveResult {
        let mut b = QuboBuilder::new(6);
        b.add_linear(0, -2).add_linear(3, -1).add_quadratic(0, 1, 3);
        let q = b.build().unwrap();
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 4,
            seed: 11,
            ..DabsConfig::default()
        })
        .unwrap();
        solver.run_sequential(&q, Termination::batches(40))
    }

    #[test]
    fn solve_result_round_trips() {
        let r = sample_result();
        let line = r.to_json().to_string();
        assert!(!line.contains('\n'), "wire form must be one line");
        let parsed = Json::parse(&line).unwrap();
        let back = SolveResult::from_json(&parsed).unwrap();
        assert_eq!(back.energy, r.energy);
        assert_eq!(back.best, r.best);
        assert_eq!(back.batches, r.batches);
        assert_eq!(back.flips, r.flips);
        // Wire precision is whole microseconds.
        assert_eq!(
            back.time_to_best,
            Duration::from_micros(r.time_to_best.as_micros() as u64)
        );
        assert_eq!(back.frequencies, r.frequencies);
        assert_eq!(back.first_finder, r.first_finder);
        assert_eq!(back.restarts, r.restarts);
    }

    #[test]
    fn missing_fields_are_rejected() {
        assert!(SolveResult::from_json(&Json::parse("{}").unwrap()).is_err());
        let j = Json::parse("{\"energy\":3}").unwrap();
        let e = SolveResult::from_json(&j).unwrap_err();
        assert!(e.contains("best"), "{e}");
    }

    #[test]
    fn name_lookups_invert_names() {
        for a in MainAlgorithm::ALL {
            assert_eq!(algorithm_by_name(a.name()), Some(a));
        }
        for o in GeneticOp::DABS.into_iter().chain([GeneticOp::CrossMutate]) {
            assert_eq!(operation_by_name(o.name()), Some(o));
        }
        assert_eq!(algorithm_by_name("Nope"), None);
        assert_eq!(operation_by_name(""), None);
    }
}
