//! The genetic operations generating target vectors (paper §IV-A).

use dabs_model::Solution;
use dabs_rng::Rng64;
use serde::{Deserialize, Serialize};

/// A genetic operation. The first eight are the paper's DABS portfolio (in
/// the order of Tables V/VI); [`GeneticOp::CrossMutate`] is the single fixed
/// operation of the earlier ABS solver (crossover followed by mutation),
/// used only by the ABS baseline preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeneticOp {
    /// Fresh uniform-random vector; ignores the pool.
    Random,
    /// The pool's best solution, as-is.
    Best,
    /// One parent; each bit flipped with probability `mutation_prob`.
    Mutation,
    /// Two parents from the same pool, uniform bit mix.
    Crossover,
    /// Inter-pool crossover: one local parent, one from the neighbour pool.
    Xrossover,
    /// One parent; each bit overwritten with 0 with probability `zero_prob`.
    Zero,
    /// One parent; each bit overwritten with 1 with probability `one_prob`.
    One,
    /// One parent; a random cyclic segment of length in `[32, n/2]` zeroed.
    IntervalZero,
    /// ABS baseline: crossover of two parents, then mutation.
    CrossMutate,
}

impl GeneticOp {
    /// The DABS portfolio (paper's eight operations, table order).
    pub const DABS: [GeneticOp; 8] = [
        GeneticOp::Random,
        GeneticOp::Best,
        GeneticOp::Mutation,
        GeneticOp::Crossover,
        GeneticOp::Xrossover,
        GeneticOp::Zero,
        GeneticOp::One,
        GeneticOp::IntervalZero,
    ];

    /// Stable index (doubles as the packet tag).
    pub fn index(self) -> usize {
        match self {
            GeneticOp::Random => 0,
            GeneticOp::Best => 1,
            GeneticOp::Mutation => 2,
            GeneticOp::Crossover => 3,
            GeneticOp::Xrossover => 4,
            GeneticOp::Zero => 5,
            GeneticOp::One => 6,
            GeneticOp::IntervalZero => 7,
            GeneticOp::CrossMutate => 8,
        }
    }

    /// Recover an operation from a packet tag.
    pub fn from_index(idx: u8) -> Option<GeneticOp> {
        Some(match idx {
            0 => GeneticOp::Random,
            1 => GeneticOp::Best,
            2 => GeneticOp::Mutation,
            3 => GeneticOp::Crossover,
            4 => GeneticOp::Xrossover,
            5 => GeneticOp::Zero,
            6 => GeneticOp::One,
            7 => GeneticOp::IntervalZero,
            8 => GeneticOp::CrossMutate,
            _ => return None,
        })
    }

    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            GeneticOp::Random => "Random",
            GeneticOp::Best => "Best",
            GeneticOp::Mutation => "Mutation",
            GeneticOp::Crossover => "Crossover",
            GeneticOp::Xrossover => "Xrossover",
            GeneticOp::Zero => "Zero",
            GeneticOp::One => "One",
            GeneticOp::IntervalZero => "IntervalZero",
            GeneticOp::CrossMutate => "CrossMutate",
        }
    }

    /// How many parents the operation draws from pools.
    pub fn arity(self) -> usize {
        match self {
            GeneticOp::Random => 0,
            GeneticOp::Best
            | GeneticOp::Mutation
            | GeneticOp::Zero
            | GeneticOp::One
            | GeneticOp::IntervalZero => 1,
            GeneticOp::Crossover | GeneticOp::Xrossover | GeneticOp::CrossMutate => 2,
        }
    }
}

/// Per-bit probabilities used by the probabilistic operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpProbabilities {
    /// Mutation flip probability (paper: 1/8).
    pub mutation: f64,
    /// Zero overwrite probability (paper: 1/8).
    pub zero: f64,
    /// One overwrite probability (paper: "small", we default to 1/8).
    pub one: f64,
}

impl Default for OpProbabilities {
    fn default() -> Self {
        Self {
            mutation: 0.125,
            zero: 0.125,
            one: 0.125,
        }
    }
}

/// Apply `op` to the given parents, producing a target vector.
///
/// `parents` must contain at least [`GeneticOp::arity`] entries (extras are
/// ignored); for `Xrossover` the second parent is expected to come from the
/// neighbour pool and for `Best` the first parent is expected to be the
/// pool's best (the *caller* — [`crate::generate_target`] — enforces both).
pub fn apply_op<R: Rng64 + ?Sized>(
    op: GeneticOp,
    parents: &[&Solution],
    n: usize,
    probs: OpProbabilities,
    rng: &mut R,
) -> Solution {
    assert!(
        parents.len() >= op.arity(),
        "{} needs {} parents, got {}",
        op.name(),
        op.arity(),
        parents.len()
    );
    match op {
        GeneticOp::Random => Solution::random(n, rng),
        GeneticOp::Best => parents[0].clone(),
        GeneticOp::Mutation => {
            let mut child = parents[0].clone();
            flip_each_with(&mut child, probs.mutation, rng);
            child
        }
        GeneticOp::Crossover | GeneticOp::Xrossover => parents[0].crossover(parents[1], rng),
        GeneticOp::Zero => {
            let mut child = parents[0].clone();
            overwrite_each_with(&mut child, false, probs.zero, rng);
            child
        }
        GeneticOp::One => {
            let mut child = parents[0].clone();
            overwrite_each_with(&mut child, true, probs.one, rng);
            child
        }
        GeneticOp::IntervalZero => {
            let mut child = parents[0].clone();
            zero_random_interval(&mut child, rng);
            child
        }
        GeneticOp::CrossMutate => {
            let mut child = parents[0].crossover(parents[1], rng);
            flip_each_with(&mut child, probs.mutation, rng);
            child
        }
    }
}

fn flip_each_with<R: Rng64 + ?Sized>(x: &mut Solution, p: f64, rng: &mut R) {
    for i in 0..x.len() {
        if rng.next_bool(p) {
            x.flip(i);
        }
    }
}

fn overwrite_each_with<R: Rng64 + ?Sized>(x: &mut Solution, value: bool, p: f64, rng: &mut R) {
    for i in 0..x.len() {
        if rng.next_bool(p) {
            x.set(i, value);
        }
    }
}

/// Zero a random cyclic segment of length in `[min(32, n), max(n/2, min)]`.
fn zero_random_interval<R: Rng64 + ?Sized>(x: &mut Solution, rng: &mut R) {
    let n = x.len();
    let lo = 32.min(n);
    let hi = (n / 2).max(lo);
    let len = lo + rng.next_index(hi - lo + 1);
    let start = rng.next_index(n);
    for off in 0..len {
        x.set((start + off) % n, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::Xorshift64Star;

    fn probs() -> OpProbabilities {
        OpProbabilities::default()
    }

    #[test]
    fn indices_round_trip() {
        for op in GeneticOp::DABS.into_iter().chain([GeneticOp::CrossMutate]) {
            assert_eq!(GeneticOp::from_index(op.index() as u8), Some(op));
        }
        assert_eq!(GeneticOp::from_index(99), None);
    }

    #[test]
    fn dabs_portfolio_is_the_papers_eight() {
        let names: Vec<&str> = GeneticOp::DABS.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            [
                "Random",
                "Best",
                "Mutation",
                "Crossover",
                "Xrossover",
                "Zero",
                "One",
                "IntervalZero"
            ]
        );
    }

    #[test]
    fn best_is_identity() {
        let mut rng = Xorshift64Star::new(1);
        let p = Solution::random(100, &mut rng);
        let child = apply_op(GeneticOp::Best, &[&p], 100, probs(), &mut rng);
        assert_eq!(child, p);
    }

    #[test]
    fn mutation_flips_about_p_fraction() {
        let mut rng = Xorshift64Star::new(2);
        let p = Solution::zeros(8000);
        let child = apply_op(GeneticOp::Mutation, &[&p], 8000, probs(), &mut rng);
        let flipped = child.hamming(&p);
        assert!(
            (800..1200).contains(&flipped),
            "expected ≈1000 flips, got {flipped}"
        );
    }

    #[test]
    fn zero_only_clears_bits() {
        let mut rng = Xorshift64Star::new(3);
        let p = Solution::ones(4000);
        let child = apply_op(GeneticOp::Zero, &[&p], 4000, probs(), &mut rng);
        let cleared = 4000 - child.count_ones();
        assert!((380..630).contains(&cleared), "cleared {cleared}");
        // Zero never sets a bit
        for i in child.iter_ones() {
            assert!(p.get(i));
        }
    }

    #[test]
    fn one_only_sets_bits() {
        let mut rng = Xorshift64Star::new(4);
        let p = Solution::zeros(4000);
        let child = apply_op(GeneticOp::One, &[&p], 4000, probs(), &mut rng);
        let set = child.count_ones();
        assert!((380..630).contains(&set), "set {set}");
    }

    #[test]
    fn interval_zero_clears_contiguous_cyclic_block() {
        let mut rng = Xorshift64Star::new(5);
        let p = Solution::ones(300);
        let child = apply_op(GeneticOp::IntervalZero, &[&p], 300, probs(), &mut rng);
        let cleared = 300 - child.count_ones();
        assert!(
            (32..=150).contains(&cleared),
            "segment length {cleared} out of [32, n/2]"
        );
        // cleared bits form one cyclic run: count 1→0 boundaries
        let boundaries = (0..300)
            .filter(|&i| child.get(i) && !child.get((i + 1) % 300))
            .count();
        assert_eq!(boundaries, 1, "cleared bits must be one cyclic segment");
    }

    #[test]
    fn interval_zero_handles_tiny_vectors() {
        let mut rng = Xorshift64Star::new(6);
        let p = Solution::ones(10);
        let child = apply_op(GeneticOp::IntervalZero, &[&p], 10, probs(), &mut rng);
        assert!(child.count_ones() < 10, "something must be cleared");
    }

    #[test]
    fn crossover_bits_come_from_parents() {
        let mut rng = Xorshift64Star::new(7);
        let a = Solution::random(200, &mut rng);
        let b = Solution::random(200, &mut rng);
        let child = apply_op(GeneticOp::Crossover, &[&a, &b], 200, probs(), &mut rng);
        for i in 0..200 {
            assert!(child.get(i) == a.get(i) || child.get(i) == b.get(i));
        }
    }

    #[test]
    fn cross_mutate_differs_from_pure_crossover() {
        // statistically: with p = 1/8 over 2000 bits, the mutation layer
        // virtually always changes something relative to both parents'
        // agreement positions.
        let mut rng = Xorshift64Star::new(8);
        let a = Solution::zeros(2000);
        let b = Solution::zeros(2000);
        let child = apply_op(GeneticOp::CrossMutate, &[&a, &b], 2000, probs(), &mut rng);
        assert!(child.count_ones() > 100, "mutation layer must act");
    }

    #[test]
    fn random_ignores_parents() {
        let mut rng = Xorshift64Star::new(9);
        let child = apply_op(GeneticOp::Random, &[], 500, probs(), &mut rng);
        let ones = child.count_ones();
        assert!((150..350).contains(&ones));
    }

    #[test]
    #[should_panic(expected = "needs 2 parents")]
    fn arity_is_enforced() {
        let mut rng = Xorshift64Star::new(10);
        let a = Solution::zeros(10);
        apply_op(GeneticOp::Crossover, &[&a], 10, probs(), &mut rng);
    }

    #[test]
    fn arities() {
        assert_eq!(GeneticOp::Random.arity(), 0);
        assert_eq!(GeneticOp::Best.arity(), 1);
        assert_eq!(GeneticOp::Xrossover.arity(), 2);
        assert_eq!(GeneticOp::CrossMutate.arity(), 2);
    }
}
