//! Solver configuration and the ABS baseline preset.

use crate::genetic::{GeneticOp, OpProbabilities};
use dabs_search::{MainAlgorithm, SearchParams};
use serde::{Deserialize, Serialize};

/// Full configuration of a DABS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DabsConfig {
    /// Number of virtual devices = number of solution pools (paper: 8).
    pub devices: usize,
    /// Block workers per device (paper: 216 CUDA blocks per A100; a small
    /// number of CPU threads is the simulator equivalent).
    pub blocks_per_device: usize,
    /// Batch-search flip budgets and tabu tenure.
    pub params: SearchParams,
    /// Pool capacity in packets (paper: 100).
    pub pool_capacity: usize,
    /// Exploration probability of adaptive selection (paper: 5 %); the
    /// complement replays a random pool row's recorded choice.
    pub explore_prob: f64,
    /// The search-algorithm portfolio.
    pub algorithms: Vec<MainAlgorithm>,
    /// The genetic-operation portfolio.
    pub operations: Vec<GeneticOp>,
    /// Bit probabilities of Mutation/Zero/One.
    pub probabilities: OpProbabilities,
    /// Reject duplicate solutions at pool insertion.
    pub dedup: bool,
    /// Optional pool-restart trigger (paper §IV-B): when a full pool's mean
    /// Hamming distance to its best drops below this value, the pool is
    /// re-initialised with random vectors. `None` disables restarts.
    pub restart_diversity: Option<f64>,
    /// Master seed; every pool, device and block derives its stream from it.
    pub seed: u64,
}

impl Default for DabsConfig {
    fn default() -> Self {
        Self {
            devices: 4,
            blocks_per_device: 2,
            params: SearchParams::default(),
            pool_capacity: 100,
            explore_prob: 0.05,
            algorithms: MainAlgorithm::ALL.to_vec(),
            operations: GeneticOp::DABS.to_vec(),
            probabilities: OpProbabilities::default(),
            dedup: true,
            restart_diversity: None,
            seed: 0xDAB5,
        }
    }
}

impl DabsConfig {
    /// The paper's full DABS portfolio with given device/block counts.
    pub fn dabs(devices: usize, blocks_per_device: usize) -> Self {
        Self {
            devices,
            blocks_per_device,
            ..Self::default()
        }
    }

    /// The ABS baseline (paper ref \[16\], §I-B): CyclicMin only, a single
    /// fixed genetic operation (mutation after crossover). All other
    /// machinery (pools, islands, bulk search) is identical, which is what
    /// makes Table II/III/IV's DABS-vs-ABS comparison an ablation of
    /// diversity.
    pub fn abs_baseline(devices: usize, blocks_per_device: usize) -> Self {
        Self {
            devices,
            blocks_per_device,
            algorithms: vec![MainAlgorithm::CyclicMin],
            operations: vec![GeneticOp::CrossMutate],
            ..Self::default()
        }
    }

    /// Validate invariants; called by the solver before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("devices must be ≥ 1".into());
        }
        if self.blocks_per_device == 0 {
            return Err("blocks_per_device must be ≥ 1".into());
        }
        if self.pool_capacity == 0 {
            return Err("pool_capacity must be ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.explore_prob) {
            return Err(format!("explore_prob {} outside [0,1]", self.explore_prob));
        }
        if self.algorithms.is_empty() {
            return Err("algorithm portfolio must be non-empty".into());
        }
        if self.operations.is_empty() {
            return Err("operation portfolio must be non-empty".into());
        }
        if self.params.search_flip_factor <= 0.0 || self.params.batch_flip_factor <= 0.0 {
            return Err("flip factors must be positive".into());
        }
        let lanes = self.params.batch_lanes as usize;
        if lanes != 0 && !dabs_model::valid_lanes(lanes) {
            return Err(format!(
                "batch_lanes {lanes} invalid (0 for scalar, or a multiple of 64 in [64, 256])"
            ));
        }
        for p in [
            self.probabilities.mutation,
            self.probabilities.zero,
            self.probabilities.one,
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("bit probability {p} outside [0,1]"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = DabsConfig::default();
        assert_eq!(c.pool_capacity, 100);
        assert_eq!(c.explore_prob, 0.05);
        assert_eq!(c.params.tabu_tenure, 8);
        assert_eq!(c.algorithms.len(), 5);
        assert_eq!(c.operations.len(), 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn abs_preset_is_single_strategy() {
        let c = DabsConfig::abs_baseline(8, 2);
        assert_eq!(c.algorithms, vec![MainAlgorithm::CyclicMin]);
        assert_eq!(c.operations, vec![GeneticOp::CrossMutate]);
        assert_eq!(c.devices, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = DabsConfig {
            devices: 0,
            ..DabsConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DabsConfig {
            explore_prob: 1.5,
            ..DabsConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = DabsConfig::default();
        c.algorithms.clear();
        assert!(c.validate().is_err());

        let mut c = DabsConfig::default();
        c.params.batch_flip_factor = 0.0;
        assert!(c.validate().is_err());

        let mut c = DabsConfig::default();
        c.probabilities.mutation = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_checks_batch_lane_widths() {
        for ok in [0u32, 64, 128, 192, 256] {
            let mut c = DabsConfig::default();
            c.params.batch_lanes = ok;
            assert!(c.validate().is_ok(), "lanes {ok}");
        }
        for bad in [1u32, 32, 63, 96, 320] {
            let mut c = DabsConfig::default();
            c.params.batch_lanes = bad;
            assert!(c.validate().is_err(), "lanes {bad}");
        }
    }
}
