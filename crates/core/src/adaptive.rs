//! Adaptive selection of search algorithms and genetic operations
//! (paper §IV-A, final paragraphs).
//!
//! With probability `explore_prob` (5 %) the host picks uniformly from the
//! configured portfolio; otherwise it picks a uniformly random pool row and
//! replays the algorithm/operation recorded there. Because rows are created
//! by successful batches, pairs that produce good solutions accumulate rows
//! and therefore get replayed more often — selection pressure emerges from
//! the pool contents alone.

use crate::genetic::{apply_op, GeneticOp};
use crate::{DabsConfig, SolutionPool};
use dabs_model::Solution;
use dabs_rng::Rng64;
use dabs_search::MainAlgorithm;

/// Choose the main search algorithm for the next packet.
pub fn select_algorithm<R: Rng64 + ?Sized>(
    pool: &SolutionPool,
    config: &DabsConfig,
    rng: &mut R,
) -> MainAlgorithm {
    if pool.is_empty() || rng.next_bool(config.explore_prob) {
        config.algorithms[rng.next_index(config.algorithms.len())]
    } else {
        let recorded = pool.select_uniform(rng).algorithm;
        // If the recorded algorithm fell out of the portfolio (possible when
        // a run restarts with a narrowed config), fall back to exploration.
        if config.algorithms.contains(&recorded) {
            recorded
        } else {
            config.algorithms[rng.next_index(config.algorithms.len())]
        }
    }
}

/// Choose the genetic operation for the next packet.
pub fn select_operation<R: Rng64 + ?Sized>(
    pool: &SolutionPool,
    config: &DabsConfig,
    rng: &mut R,
) -> GeneticOp {
    if pool.is_empty() || rng.next_bool(config.explore_prob) {
        config.operations[rng.next_index(config.operations.len())]
    } else {
        let recorded = pool.select_uniform(rng).operation;
        if config.operations.contains(&recorded) {
            recorded
        } else {
            config.operations[rng.next_index(config.operations.len())]
        }
    }
}

/// Generate a target solution with the given operation.
///
/// Parent picks use the rank-biased `⌊r³·m⌋` rule. `neighbor` is the next
/// pool on the island ring, used by Xrossover; when it is unavailable (one
/// island) Xrossover degrades to intra-pool Crossover, which matches the
/// island model's single-pool limit.
pub fn generate_target<R: Rng64 + ?Sized>(
    op: GeneticOp,
    pool: &SolutionPool,
    neighbor: Option<&SolutionPool>,
    n: usize,
    config: &DabsConfig,
    rng: &mut R,
) -> Solution {
    let probs = config.probabilities;
    match op {
        GeneticOp::Random => apply_op(op, &[], n, probs, rng),
        GeneticOp::Best => {
            let best = &pool.best().expect("pool is pre-filled").solution;
            apply_op(op, &[best], n, probs, rng)
        }
        GeneticOp::Mutation | GeneticOp::Zero | GeneticOp::One | GeneticOp::IntervalZero => {
            let parent = &pool.select_biased(rng).solution;
            apply_op(op, &[parent], n, probs, rng)
        }
        GeneticOp::Crossover | GeneticOp::CrossMutate => {
            let a = &pool.select_biased(rng).solution;
            let b = &pool.select_biased(rng).solution;
            apply_op(op, &[a, b], n, probs, rng)
        }
        GeneticOp::Xrossover => {
            let a = &pool.select_biased(rng).solution;
            let b = match neighbor {
                Some(nb) if !nb.is_empty() => &nb.select_biased(rng).solution,
                _ => &pool.select_biased(rng).solution,
            };
            apply_op(GeneticOp::Xrossover, &[a, b], n, probs, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolEntry;
    use dabs_rng::Xorshift64Star;

    fn pool_with(algo: MainAlgorithm, op: GeneticOp, rows: usize) -> SolutionPool {
        let mut pool = SolutionPool::new(rows.max(1), false);
        let mut rng = Xorshift64Star::new(99);
        for i in 0..rows {
            pool.insert(PoolEntry {
                solution: Solution::random(32, &mut rng),
                energy: i as i64,
                algorithm: algo,
                operation: op,
            });
        }
        pool
    }

    #[test]
    fn replay_dominates_selection() {
        // A pool filled with PositiveMin rows: with explore = 5 %, selection
        // must return PositiveMin ≈ 95 % + 1 % (exploring into it) of draws.
        let pool = pool_with(MainAlgorithm::PositiveMin, GeneticOp::Zero, 50);
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(1);
        let trials = 10_000;
        let hits = (0..trials)
            .filter(|_| select_algorithm(&pool, &config, &mut rng) == MainAlgorithm::PositiveMin)
            .count();
        let frac = hits as f64 / trials as f64;
        assert!(frac > 0.93, "replay rate {frac} too low");
        // same for operations
        let hits = (0..trials)
            .filter(|_| select_operation(&pool, &config, &mut rng) == GeneticOp::Zero)
            .count();
        let frac = hits as f64 / trials as f64;
        assert!(frac > 0.93, "op replay rate {frac} too low");
    }

    #[test]
    fn exploration_still_reaches_other_choices() {
        let pool = pool_with(MainAlgorithm::PositiveMin, GeneticOp::Zero, 50);
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(2);
        let mut seen_algos = std::collections::HashSet::new();
        let mut seen_ops = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen_algos.insert(select_algorithm(&pool, &config, &mut rng));
            seen_ops.insert(select_operation(&pool, &config, &mut rng));
        }
        assert_eq!(seen_algos.len(), 5, "5 % exploration must reach all algos");
        assert_eq!(seen_ops.len(), 8, "5 % exploration must reach all ops");
    }

    #[test]
    fn empty_pool_explores_uniformly() {
        let pool = SolutionPool::new(5, false);
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            *counts
                .entry(select_algorithm(&pool, &config, &mut rng))
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 5);
        for &c in counts.values() {
            assert!(c > 700, "uniform spread expected: {counts:?}");
        }
    }

    #[test]
    fn recorded_choice_outside_portfolio_falls_back() {
        let pool = pool_with(MainAlgorithm::MaxMin, GeneticOp::One, 10);
        let config = DabsConfig {
            algorithms: vec![MainAlgorithm::CyclicMin],
            operations: vec![GeneticOp::CrossMutate],
            ..DabsConfig::default()
        };
        let mut rng = Xorshift64Star::new(4);
        for _ in 0..200 {
            assert_eq!(
                select_algorithm(&pool, &config, &mut rng),
                MainAlgorithm::CyclicMin
            );
            assert_eq!(
                select_operation(&pool, &config, &mut rng),
                GeneticOp::CrossMutate
            );
        }
    }

    #[test]
    fn xrossover_uses_neighbor_pool() {
        // Local pool is all-zeros, neighbour all-ones: the child of
        // Xrossover must contain bits from both (≈ half ones).
        let n = 512;
        let mut local = SolutionPool::new(2, false);
        let mut neighbor = SolutionPool::new(2, false);
        local.insert(PoolEntry {
            solution: Solution::zeros(n),
            energy: 0,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Best,
        });
        neighbor.insert(PoolEntry {
            solution: Solution::ones(n),
            energy: 0,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Best,
        });
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(5);
        let child = generate_target(
            GeneticOp::Xrossover,
            &local,
            Some(&neighbor),
            n,
            &config,
            &mut rng,
        );
        let ones = child.count_ones();
        assert!(
            (150..360).contains(&ones),
            "Xrossover child should mix pools: {ones} ones"
        );
    }

    #[test]
    fn xrossover_without_neighbor_degrades_to_crossover() {
        let n = 32; // matches the helper's solution length
        let pool = pool_with(MainAlgorithm::MaxMin, GeneticOp::Best, 3);
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(6);
        // must not panic, and must produce a valid-length vector
        let child = generate_target(GeneticOp::Xrossover, &pool, None, n, &config, &mut rng);
        assert_eq!(child.len(), n);
    }

    #[test]
    fn best_operation_reproduces_pool_best() {
        let pool = pool_with(MainAlgorithm::MaxMin, GeneticOp::Best, 5);
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(7);
        let child = generate_target(GeneticOp::Best, &pool, None, 32, &config, &mut rng);
        assert_eq!(child, pool.best().unwrap().solution);
    }
}
