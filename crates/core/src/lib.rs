//! Diverse Adaptive Bulk Search — the paper's primary contribution.
//!
//! DABS drives the bulk-search substrate (`dabs-gpu-sim`) with a genetic
//! algorithm that is *diverse* along three axes and *adaptive* along two:
//!
//! 1. **Multiple search algorithms** — every batch runs one of the five main
//!    algorithms of `dabs-search`; which one is chosen adaptively.
//! 2. **Multiple genetic operations** — target vectors are produced by one
//!    of eight operations ([`GeneticOp`]); which one is chosen adaptively.
//! 3. **Multiple solution pools** — one pool per device, arranged in a ring
//!    ([island model](SolutionPool)); the [`GeneticOp::Xrossover`] operation
//!    crosses parents from neighbouring pools, replacing migration.
//!
//! Adaptivity works through the pool itself: every pool row remembers the
//! algorithm and operation that produced it, and with 95 % probability the
//! host *replays* the pair recorded in a uniformly random row (5 % of the
//! time it explores uniformly). Pairs that produce good solutions therefore
//! occupy more rows and get selected more often — no explicit scoring model.
//!
//! [`DabsSolver`] is the multi-threaded solver (one host thread + one
//! virtual device per pool); [`DabsSolver::run_sequential`] is a
//! deterministic single-threaded mode used by tests and small studies. The
//! authors' earlier fixed-strategy ABS solver is available as the
//! [`DabsConfig::abs_baseline`] preset.
//!
//! ```
//! use dabs_core::{DabsConfig, DabsSolver, Termination};
//! use dabs_model::QuboBuilder;
//!
//! // E(X) = −2·x0 + 3·x0·x1 − x1: optimum is x = (1, 0) with E = −2.
//! let mut b = QuboBuilder::new(2);
//! b.add_linear(0, -2).add_linear(1, -1).add_quadratic(0, 1, 3);
//! let model = b.build().unwrap();
//!
//! let solver = DabsSolver::new(DabsConfig {
//!     devices: 1,
//!     blocks_per_device: 1,
//!     pool_capacity: 4,
//!     ..DabsConfig::default()
//! }).unwrap();
//! let result = solver.run_sequential(&model, Termination::batches(10));
//! assert_eq!(result.energy, -2);
//! assert!(result.best.get(0) && !result.best.get(1));
//! ```

mod adaptive;
mod config;
mod genetic;
mod island;
pub mod obs;
mod pool;
mod solver;
mod stats;
pub mod wire;

pub use adaptive::{generate_target, select_algorithm, select_operation};
pub use config::DabsConfig;
// Re-exported so external-cancellation callers (the server job runtime, the
// CLI) need only `dabs-core`.
pub use dabs_gpu_sim::StopFlag;
pub use genetic::GeneticOp;
pub use island::IslandRing;
pub use obs::{push_hist, solver_obs, ObsAccumulator, SolverObs};
pub use pool::{PoolEntry, SolutionPool};
pub use solver::{
    DabsSolver, Incumbent, IncumbentObserver, SolveResult, Termination, UnitOutcome, UnitRun,
    WarmStart,
};
pub use stats::{Direction, FrequencyReport, FrequencyTracker, Metric, MetricSet};
