//! The DABS solver (paper §V): host threads + virtual devices.
//!
//! Architecture per Fig. 2: each device is paired with one solution pool and
//! one host thread. The host thread generates target packets by adaptive
//! genetic operations on its pool (occasionally crossing into the ring
//! neighbour's pool), keeps the device's request queue full, and folds
//! returned results back into the pool and the global best.
//!
//! Two execution modes:
//!
//! * [`DabsSolver::run`] — threaded, one virtual device (with
//!   `blocks_per_device` block workers) + one host thread per pool.
//! * [`DabsSolver::run_sequential`] — single-threaded round-robin over
//!   inline devices; bit-for-bit deterministic for a given seed, used by
//!   tests and ablation studies.

use crate::adaptive::{generate_target, select_algorithm, select_operation};
use crate::{
    DabsConfig, FrequencyReport, FrequencyTracker, GeneticOp, IslandRing, PoolEntry, SolutionPool,
};
use crossbeam::channel;
use dabs_gpu_sim::{
    DeviceConfig, DeviceStats, InlineDevice, Packet, SharedBest, StopFlag, VirtualDevice,
};
use dabs_model::{CsrKernel, DenseKernel, KernelKind, QuboKernel, QuboModel, Solution};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use dabs_search::MainAlgorithm;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When to stop a run. Conditions combine with OR; at least one must be set.
#[derive(Debug, Clone, Default)]
pub struct Termination {
    /// Stop as soon as the global best reaches (≤) this energy.
    pub target_energy: Option<i64>,
    /// Stop after this wall-clock time.
    pub time_limit: Option<Duration>,
    /// Stop after this many batches (summed over all devices).
    pub max_batches: Option<u64>,
    /// External cancellation hook: stop as soon as this flag trips. The flag
    /// is owned by the caller (a job runtime, a signal handler, …) and may
    /// already be tripped when the run starts — the run then returns without
    /// executing a batch. Checked between batches, so cancellation latency
    /// is one batch, not one run.
    pub stop: Option<Arc<StopFlag>>,
}

impl Termination {
    /// Run until `target` is reached (no safety net — combine with a limit
    /// for non-trivial instances).
    pub fn target(target: i64) -> Self {
        Self {
            target_energy: Some(target),
            ..Self::default()
        }
    }

    /// Run for a fixed wall-clock budget.
    pub fn time(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            ..Self::default()
        }
    }

    /// Run for a fixed number of batches.
    pub fn batches(max: u64) -> Self {
        Self {
            max_batches: Some(max),
            ..Self::default()
        }
    }

    /// Run until the external flag trips (no other condition — the caller is
    /// fully responsible for stopping the run).
    pub fn external(stop: Arc<StopFlag>) -> Self {
        Self {
            stop: Some(stop),
            ..Self::default()
        }
    }

    /// Add a target energy.
    pub fn with_target(mut self, target: i64) -> Self {
        self.target_energy = Some(target);
        self
    }

    /// Add a time limit.
    pub fn with_time(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Add a batch limit.
    pub fn with_batches(mut self, max: u64) -> Self {
        self.max_batches = Some(max);
        self
    }

    /// Add an external cancellation flag.
    pub fn with_stop(mut self, stop: Arc<StopFlag>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Has the external flag (if any) tripped?
    #[inline]
    pub fn stop_requested(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.is_stopped())
    }

    fn validate(&self) -> Result<(), String> {
        if self.target_energy.is_none()
            && self.time_limit.is_none()
            && self.max_batches.is_none()
            && self.stop.is_none()
        {
            return Err("termination must set at least one condition".into());
        }
        Ok(())
    }
}

/// A new global-best solution, as delivered to an incumbent observer.
#[derive(Debug, Clone)]
pub struct Incumbent {
    /// The improving solution.
    pub solution: Solution,
    /// Its energy — strictly lower than every previously observed incumbent
    /// of the same run.
    pub energy: i64,
    /// Wall-clock offset from the start of the run.
    pub found_at: Duration,
}

/// Callback invoked on every new best-energy incumbent of a run.
///
/// Invocations are serialized and strictly improving (each call carries a
/// lower energy than the previous one), in both execution modes. The
/// callback runs on a solver thread while an internal lock is held: keep it
/// fast (push to a channel, update an atomic) and never call back into the
/// solver from inside it.
pub type IncumbentObserver = Arc<dyn Fn(&Incumbent) + Send + Sync>;

/// Outcome of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveResult {
    /// Best solution found.
    pub best: Solution,
    /// Its energy.
    pub energy: i64,
    /// Wall-clock time at which the final best was first observed — the TTS
    /// when the target was reached.
    pub time_to_best: Duration,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Batches executed across all devices.
    pub batches: u64,
    /// Bit flips executed across all devices.
    pub flips: u64,
    /// Whether the target energy (if any) was reached.
    pub reached_target: bool,
    /// Table-V-style execution frequencies.
    pub frequencies: FrequencyReport,
    /// The (algorithm, operation) pair whose batch first produced the final
    /// best solution (Table VI).
    pub first_finder: Option<(MainAlgorithm, GeneticOp)>,
    /// Pool restarts triggered by the diversity watchdog.
    pub restarts: u32,
}

/// Shared record of the best solution across all pools/devices.
struct GlobalBest {
    /// Fast-path energy for lock-free checks.
    energy: AtomicI64,
    detail: Mutex<BestDetail>,
    /// Incumbent callback; invoked under the `detail` lock so deliveries are
    /// serialized and strictly improving even with many host threads racing.
    observer: Option<IncumbentObserver>,
}

#[derive(Debug)]
struct BestDetail {
    solution: Option<Solution>,
    energy: i64,
    found_at: Duration,
    finder: Option<(MainAlgorithm, GeneticOp)>,
}

impl GlobalBest {
    fn new(observer: Option<IncumbentObserver>) -> Self {
        Self {
            energy: AtomicI64::new(i64::MAX),
            detail: Mutex::new(BestDetail {
                solution: None,
                energy: i64::MAX,
                found_at: Duration::ZERO,
                finder: None,
            }),
            observer,
        }
    }

    /// Record a candidate; cheap when not an improvement.
    fn offer(
        &self,
        solution: &Solution,
        energy: i64,
        found_at: Duration,
        finder: (MainAlgorithm, GeneticOp),
    ) {
        if energy >= self.energy.load(Ordering::Relaxed) {
            return;
        }
        let mut d = self.detail.lock();
        if energy < d.energy {
            d.energy = energy;
            d.solution = Some(solution.clone());
            d.found_at = found_at;
            d.finder = Some(finder);
            self.energy.store(energy, Ordering::Relaxed);
            if let Some(obs) = &self.observer {
                obs(&Incumbent {
                    solution: solution.clone(),
                    energy,
                    found_at,
                });
            }
        }
    }

    fn current(&self) -> i64 {
        self.energy.load(Ordering::Relaxed)
    }
}

/// The multi-pool adaptive solver.
#[derive(Debug, Clone)]
pub struct DabsSolver {
    config: DabsConfig,
}

impl DabsSolver {
    /// Build a solver, validating the configuration.
    pub fn new(config: DabsConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DabsConfig {
        &self.config
    }

    /// Threaded run: `devices` virtual devices with `blocks_per_device`
    /// workers each, plus one host thread per device.
    pub fn run(&self, model: &Arc<QuboModel>, termination: Termination) -> SolveResult {
        self.run_observed(model, termination, None)
    }

    /// Threaded run that additionally invokes `observer` on every new
    /// global-best incumbent (see [`IncumbentObserver`] for the delivery
    /// contract). Used by the server runtime to stream incumbents to
    /// subscribed clients and by the CLI for live progress.
    pub fn run_with_observer(
        &self,
        model: &Arc<QuboModel>,
        termination: Termination,
        observer: IncumbentObserver,
    ) -> SolveResult {
        self.run_observed(model, termination, Some(observer))
    }

    fn run_observed(
        &self,
        model: &Arc<QuboModel>,
        termination: Termination,
        observer: Option<IncumbentObserver>,
    ) -> SolveResult {
        termination.validate().expect("invalid termination");
        let n = model.n();
        let cfg = &self.config;
        let start = Instant::now();

        let ring = IslandRing::new(cfg.devices, cfg.pool_capacity, cfg.dedup);
        let mut seeder = SplitMix64::new(cfg.seed);
        for d in 0..cfg.devices {
            let mut rng = Xorshift64Star::new(seeder.next_u64());
            ring.pool(d)
                .lock()
                .fill_random(n, &cfg.algorithms, &cfg.operations, &mut rng);
        }

        let tracker = Arc::new(FrequencyTracker::new());
        let global = Arc::new(GlobalBest::new(observer));
        let stop = Arc::new(StopFlag::new());
        let restarts = Arc::new(AtomicI64::new(0));
        let mut device_stats = Vec::new();
        let mut device_handles = Vec::new();
        let mut host_handles = Vec::new();

        for d in 0..cfg.devices {
            let (req_tx, req_rx) = channel::bounded::<Packet>(cfg.blocks_per_device * 2);
            let (res_tx, res_rx) = channel::unbounded::<Packet>();
            let stats = Arc::new(DeviceStats::new());
            device_stats.push(Arc::clone(&stats));
            let dev_seed = seeder.next_u64();
            device_handles.push(VirtualDevice::spawn(
                Arc::clone(model),
                DeviceConfig {
                    blocks: cfg.blocks_per_device,
                    params: cfg.params,
                    seed: dev_seed,
                },
                req_rx,
                res_tx,
                Arc::new(SharedBest::new()),
                Arc::clone(&stop),
                stats,
            ));

            let host_seed = seeder.next_u64();
            let pool = Arc::clone(ring.pool(d));
            let neighbor = ring.neighbor(d).cloned();
            let tracker = Arc::clone(&tracker);
            let global = Arc::clone(&global);
            let stop = Arc::clone(&stop);
            let restarts = Arc::clone(&restarts);
            let config = cfg.clone();
            host_handles.push(std::thread::spawn(move || {
                host_loop(
                    n,
                    &config,
                    host_seed,
                    &pool,
                    neighbor.as_ref(),
                    req_tx,
                    res_rx,
                    &tracker,
                    &global,
                    &stop,
                    &restarts,
                    start,
                );
            }));
        }

        // Supervisor: enforce the termination conditions.
        loop {
            if termination.stop_requested() {
                break;
            }
            if let Some(t) = termination.target_energy {
                if global.current() <= t {
                    break;
                }
            }
            if let Some(limit) = termination.time_limit {
                if start.elapsed() >= limit {
                    break;
                }
            }
            if let Some(maxb) = termination.max_batches {
                let total: u64 = device_stats.iter().map(|s| s.batches()).sum();
                if total >= maxb {
                    break;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        stop.stop();
        for h in host_handles {
            let _ = h.join();
        }
        for h in device_handles {
            h.join();
        }

        let elapsed = start.elapsed();
        let batches: u64 = device_stats.iter().map(|s| s.batches()).sum();
        let flips: u64 = device_stats.iter().map(|s| s.flips()).sum();
        let detail = global.detail.lock();
        let reached = termination
            .target_energy
            .map(|t| detail.energy <= t)
            .unwrap_or(false);
        SolveResult {
            best: detail
                .solution
                .clone()
                .unwrap_or_else(|| Solution::zeros(n)),
            energy: if detail.solution.is_some() {
                detail.energy
            } else {
                0
            },
            time_to_best: detail.found_at,
            elapsed,
            batches,
            flips,
            reached_target: reached,
            frequencies: tracker.report(),
            first_finder: detail.finder,
            restarts: restarts.load(Ordering::Relaxed) as u32,
        }
    }

    /// Deterministic single-threaded run: round-robin over inline devices.
    /// `max_batches` termination is exact in this mode.
    pub fn run_sequential(&self, model: &QuboModel, termination: Termination) -> SolveResult {
        self.run_sequential_observed(model, termination, None)
    }

    /// Sequential run with an incumbent observer. The observer does not
    /// perturb the search: results are bit-for-bit identical to
    /// [`DabsSolver::run_sequential`] with the same seed.
    pub fn run_sequential_with_observer(
        &self,
        model: &QuboModel,
        termination: Termination,
        observer: IncumbentObserver,
    ) -> SolveResult {
        self.run_sequential_observed(model, termination, Some(observer))
    }

    fn run_sequential_observed(
        &self,
        model: &QuboModel,
        termination: Termination,
        observer: Option<IncumbentObserver>,
    ) -> SolveResult {
        // Monomorphize the whole sequential loop on the model's selected
        // energy-kernel backend (the threaded path dispatches inside each
        // block worker instead — see `dabs_gpu_sim::VirtualDevice::spawn`).
        match model.kernel_kind() {
            KernelKind::Dense => {
                self.run_sequential_kernel(model, DenseKernel::new(model), termination, observer)
            }
            KernelKind::Csr => {
                self.run_sequential_kernel(model, CsrKernel::new(model), termination, observer)
            }
        }
    }

    fn run_sequential_kernel<K: QuboKernel>(
        &self,
        model: &QuboModel,
        kernel: K,
        termination: Termination,
        observer: Option<IncumbentObserver>,
    ) -> SolveResult {
        termination.validate().expect("invalid termination");
        let n = model.n();
        let cfg = &self.config;
        let start = Instant::now();

        let mut seeder = SplitMix64::new(cfg.seed);
        let mut pools: Vec<SolutionPool> = Vec::with_capacity(cfg.devices);
        let mut host_rngs: Vec<Xorshift64Star> = Vec::with_capacity(cfg.devices);
        for _ in 0..cfg.devices {
            let mut pool = SolutionPool::new(cfg.pool_capacity, cfg.dedup);
            let mut rng = Xorshift64Star::new(seeder.next_u64());
            pool.fill_random(n, &cfg.algorithms, &cfg.operations, &mut rng);
            pools.push(pool);
            host_rngs.push(rng);
        }
        let mut devices: Vec<InlineDevice<'_, K>> = (0..cfg.devices)
            .map(|_| InlineDevice::with_kernel(model, kernel, cfg.params, seeder.next_u64()))
            .collect();

        let tracker = FrequencyTracker::new();
        let mut best_solution: Option<Solution> = None;
        let mut best_energy = i64::MAX;
        let mut found_at = Duration::ZERO;
        let mut finder: Option<(MainAlgorithm, GeneticOp)> = None;
        let mut batches = 0u64;
        let mut restarts = 0u32;

        'outer: loop {
            for d in 0..cfg.devices {
                // Check the external flag before (not after) the batch so an
                // already-tripped flag returns without touching a device.
                if termination.stop_requested() {
                    break 'outer;
                }
                // adaptive choice + target generation on pool d
                let (packet, algo, op) = {
                    let pool = &pools[d];
                    let neighbor_idx = (d + 1) % cfg.devices;
                    let neighbor = (cfg.devices > 1).then(|| &pools[neighbor_idx]);
                    let rng = &mut host_rngs[d];
                    let algo = select_algorithm(pool, cfg, rng);
                    let op = select_operation(pool, cfg, rng);
                    let target = generate_target(op, pool, neighbor, n, cfg, rng);
                    (Packet::request(target, algo, op.index() as u8), algo, op)
                };
                tracker.record_dispatch(algo, op);
                let result = devices[d].process(packet);
                batches += 1;
                let energy = result.energy.expect("device results carry energy");
                if energy < best_energy {
                    best_energy = energy;
                    best_solution = Some(result.solution.clone());
                    found_at = start.elapsed();
                    finder = Some((algo, op));
                    if let Some(obs) = &observer {
                        obs(&Incumbent {
                            solution: result.solution.clone(),
                            energy,
                            found_at,
                        });
                    }
                }
                pools[d].insert(PoolEntry {
                    solution: result.solution,
                    energy,
                    algorithm: algo,
                    operation: op,
                });
                if let Some(threshold) = cfg.restart_diversity {
                    let pool = &mut pools[d];
                    if pool.len() == pool.capacity()
                        && pool.iter().all(|e| e.energy < i64::MAX)
                        && pool.diversity() < threshold
                    {
                        let rng = &mut host_rngs[d];
                        pool.fill_random(n, &cfg.algorithms, &cfg.operations, rng);
                        restarts += 1;
                    }
                }

                if let Some(t) = termination.target_energy {
                    if best_energy <= t {
                        break 'outer;
                    }
                }
                if let Some(maxb) = termination.max_batches {
                    if batches >= maxb {
                        break 'outer;
                    }
                }
                if let Some(limit) = termination.time_limit {
                    if start.elapsed() >= limit {
                        break 'outer;
                    }
                }
            }
        }

        let flips: u64 = devices.iter().map(|dv| dv.stats().flips()).sum();
        let reached = termination
            .target_energy
            .map(|t| best_energy <= t)
            .unwrap_or(false);
        SolveResult {
            best: best_solution.unwrap_or_else(|| Solution::zeros(n)),
            energy: if best_energy == i64::MAX {
                0
            } else {
                best_energy
            },
            time_to_best: found_at,
            elapsed: start.elapsed(),
            batches,
            flips,
            reached_target: reached,
            frequencies: tracker.report(),
            first_finder: finder,
            restarts,
        }
    }
}

/// Host thread body: feed one device from one pool.
#[allow(clippy::too_many_arguments)]
fn host_loop(
    n: usize,
    config: &DabsConfig,
    seed: u64,
    pool: &Arc<Mutex<SolutionPool>>,
    neighbor: Option<&Arc<Mutex<SolutionPool>>>,
    req_tx: channel::Sender<Packet>,
    res_rx: channel::Receiver<Packet>,
    tracker: &FrequencyTracker,
    global: &GlobalBest,
    stop: &StopFlag,
    restarts: &AtomicI64,
    start: Instant,
) {
    let mut rng = Xorshift64Star::new(seed);
    loop {
        if stop.is_stopped() {
            return;
        }
        // Fold back any finished batches.
        let mut handled = 0;
        while let Ok(result) = res_rx.try_recv() {
            handled += 1;
            let energy = result.energy.expect("device results carry energy");
            let algo = result.algorithm;
            let op = GeneticOp::from_index(result.genetic_op).unwrap_or(GeneticOp::Random);
            global.offer(&result.solution, energy, start.elapsed(), (algo, op));
            let mut p = pool.lock();
            p.insert(PoolEntry {
                solution: result.solution,
                energy,
                algorithm: algo,
                operation: op,
            });
            if let Some(threshold) = config.restart_diversity {
                if p.len() == p.capacity()
                    && p.iter().all(|e| e.energy < i64::MAX)
                    && p.diversity() < threshold
                {
                    p.fill_random(n, &config.algorithms, &config.operations, &mut rng);
                    restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Keep the device's queue topped up.
        if !req_tx.is_full() {
            let (packet, algo, op) = {
                let p = pool.lock();
                let algo = select_algorithm(&p, config, &mut rng);
                let op = select_operation(&p, config, &mut rng);
                let target = match (op, neighbor) {
                    // try_lock, not lock: each host already holds its own
                    // pool here, so two ring neighbours that pick Xrossover
                    // at the same time would block on each other's pool —
                    // an AB-BA deadlock. On contention degrade to the
                    // intra-pool form, same as the single-island case.
                    (GeneticOp::Xrossover, Some(nb)) => match nb.try_lock() {
                        Some(nbp) => generate_target(op, &p, Some(&nbp), n, config, &mut rng),
                        None => generate_target(op, &p, None, n, config, &mut rng),
                    },
                    _ => generate_target(op, &p, None, n, config, &mut rng),
                };
                (Packet::request(target, algo, op.index() as u8), algo, op)
            };
            if req_tx.send(packet).is_err() {
                return; // device gone
            }
            tracker.record_dispatch(algo, op);
        } else if handled == 0 {
            // Queue full and nothing returned: block briefly on a result.
            match res_rx.recv_timeout(Duration::from_millis(1)) {
                Ok(result) => {
                    let energy = result.energy.expect("device results carry energy");
                    let algo = result.algorithm;
                    let op = GeneticOp::from_index(result.genetic_op).unwrap_or(GeneticOp::Random);
                    global.offer(&result.solution, energy, start.elapsed(), (algo, op));
                    pool.lock().insert(PoolEntry {
                        solution: result.solution,
                        energy,
                        algorithm: algo,
                        operation: op,
                    });
                }
                Err(channel::RecvTimeoutError::Timeout) => {}
                Err(channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_model::QuboBuilder;

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    fn brute_force(q: &QuboModel) -> i64 {
        let n = q.n();
        let mut best = i64::MAX;
        for v in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(q.energy(&Solution::from_bits(&bits)));
        }
        best
    }

    #[test]
    fn sequential_finds_small_optimum() {
        let q = random_model(16, 0.4, 201);
        let opt = brute_force(&q);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 1,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::target(opt).with_batches(5_000));
        assert!(r.reached_target, "missed optimum {opt}, got {}", r.energy);
        assert_eq!(q.energy(&r.best), r.energy);
        assert_eq!(r.energy, opt);
    }

    #[test]
    fn sequential_is_deterministic() {
        let q = random_model(24, 0.3, 202);
        let mk = || {
            DabsSolver::new(DabsConfig {
                devices: 3,
                blocks_per_device: 1,
                pool_capacity: 8,
                seed: 77,
                ..DabsConfig::default()
            })
            .unwrap()
        };
        let a = mk().run_sequential(&q, Termination::batches(60));
        let b = mk().run_sequential(&q, Termination::batches(60));
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.best, b.best);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.frequencies, b.frequencies);
        assert_eq!(a.first_finder, b.first_finder);
    }

    #[test]
    fn sequential_batch_limit_is_exact() {
        let q = random_model(20, 0.3, 203);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 5,
            seed: 3,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(17));
        assert_eq!(r.batches, 17);
        assert!(!r.reached_target);
        assert!(r.flips > 0);
    }

    #[test]
    fn frequencies_cover_portfolio() {
        let q = random_model(20, 0.3, 204);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 5,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(300));
        assert_eq!(r.frequencies.total(), 300);
        // with 5% exploration over 300 draws, every algorithm should appear
        let nonzero = r
            .frequencies
            .algo_executed
            .iter()
            .filter(|&&c| c > 0)
            .count();
        assert_eq!(nonzero, 5, "{:?}", r.frequencies.algo_executed);
    }

    #[test]
    fn abs_preset_uses_only_cyclicmin_and_crossmutate() {
        let q = random_model(20, 0.3, 205);
        let solver = DabsSolver::new(DabsConfig {
            seed: 6,
            ..DabsConfig::abs_baseline(2, 1)
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(100));
        for a in MainAlgorithm::ALL {
            let count = r.frequencies.algo_executed[a.index()];
            if a == MainAlgorithm::CyclicMin {
                assert_eq!(count, 100);
            } else {
                assert_eq!(count, 0, "{} executed under ABS preset", a.name());
            }
        }
        assert_eq!(
            r.frequencies.op_executed[GeneticOp::CrossMutate.index()],
            100
        );
    }

    #[test]
    fn first_finder_is_recorded() {
        let q = random_model(16, 0.4, 206);
        let opt = brute_force(&q);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 7,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::target(opt).with_batches(5_000));
        assert!(r.first_finder.is_some());
        let (algo, op) = r.first_finder.unwrap();
        assert!(MainAlgorithm::ALL.contains(&algo));
        assert!(GeneticOp::DABS.contains(&op));
    }

    #[test]
    fn threaded_run_reaches_small_optimum() {
        let q = Arc::new(random_model(18, 0.4, 207));
        let opt = brute_force(&q);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 2,
            pool_capacity: 10,
            seed: 8,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run(
            &q,
            Termination::target(opt).with_time(Duration::from_secs(30)),
        );
        assert!(
            r.reached_target,
            "threaded run missed optimum: {}",
            r.energy
        );
        assert_eq!(q.energy(&r.best), opt);
        assert!(r.time_to_best <= r.elapsed);
        assert!(r.batches > 0);
    }

    #[test]
    fn threaded_time_limit_respected() {
        let q = Arc::new(random_model(40, 0.3, 208));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 9,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run(&q, Termination::time(Duration::from_millis(300)));
        assert!(
            r.elapsed < Duration::from_secs(10),
            "run should stop promptly"
        );
        assert!(r.batches > 0, "some work must have happened");
    }

    #[test]
    fn restart_watchdog_fires_on_degenerate_pools() {
        // A trivially-optimizable model makes every batch return the same
        // optimum, collapsing diversity; with a generous threshold the
        // watchdog must fire.
        let q = random_model(12, 0.6, 209);
        let solver = DabsSolver::new(DabsConfig {
            devices: 1,
            blocks_per_device: 1,
            pool_capacity: 3,
            dedup: false,
            restart_diversity: Some(6.0),
            seed: 10,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(400));
        assert!(r.restarts > 0, "expected at least one pool restart");
    }

    #[test]
    #[should_panic(expected = "at least one condition")]
    fn empty_termination_rejected() {
        let q = random_model(10, 0.5, 210);
        let solver = DabsSolver::new(DabsConfig::default()).unwrap();
        solver.run_sequential(&q, Termination::default());
    }

    #[test]
    fn tripped_stop_flag_returns_promptly_from_sequential() {
        let q = random_model(24, 0.3, 211);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 21,
            ..DabsConfig::default()
        })
        .unwrap();
        let stop = Arc::new(StopFlag::new());
        stop.stop();
        // A generous time limit that must NOT be consumed.
        let term = Termination::time(Duration::from_secs(60)).with_stop(Arc::clone(&stop));
        let t0 = Instant::now();
        let r = solver.run_sequential(&q, term);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "must return promptly"
        );
        assert_eq!(r.batches, 0, "no batch may run under a tripped flag");
        assert_eq!(r.energy, 0);
        assert_eq!(r.best, Solution::zeros(24));

        // Pool state is rebuilt per run: the same solver must still work.
        let r2 = solver.run_sequential(&q, Termination::batches(50));
        assert_eq!(r2.batches, 50);
        assert!(r2.flips > 0);
    }

    #[test]
    fn tripped_stop_flag_returns_promptly_from_threaded() {
        let q = Arc::new(random_model(40, 0.3, 212));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 22,
            ..DabsConfig::default()
        })
        .unwrap();
        let stop = Arc::new(StopFlag::new());
        stop.stop();
        let term = Termination::time(Duration::from_secs(60)).with_stop(Arc::clone(&stop));
        let t0 = Instant::now();
        let r = solver.run(&q, term);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "must return promptly, took {:?}",
            t0.elapsed()
        );
        // Re-running with a fresh termination must still make progress.
        let r2 = solver.run(&q, Termination::time(Duration::from_millis(100)));
        assert!(r2.batches > 0);
        let _ = r;
    }

    #[test]
    fn mid_run_cancellation_stops_both_modes() {
        let q = Arc::new(random_model(48, 0.3, 213));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 23,
            ..DabsConfig::default()
        })
        .unwrap();
        for threaded in [false, true] {
            let stop = Arc::new(StopFlag::new());
            let canceller = {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(50));
                    stop.stop();
                })
            };
            let term = Termination::external(Arc::clone(&stop));
            let t0 = Instant::now();
            let r = if threaded {
                solver.run(&q, term)
            } else {
                solver.run_sequential(&q, term)
            };
            canceller.join().unwrap();
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "threaded={threaded}: cancel not honored, took {:?}",
                t0.elapsed()
            );
            assert!(r.batches > 0, "threaded={threaded}: ran before cancel");
            assert!(!r.reached_target);
        }
    }

    #[test]
    fn sequential_observer_streams_strictly_improving_incumbents() {
        let q = random_model(32, 0.3, 214);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 24,
            ..DabsConfig::default()
        })
        .unwrap();
        let seen: Arc<Mutex<Vec<(i64, Duration)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let r = solver.run_sequential_with_observer(
            &q,
            Termination::batches(400),
            Arc::new(move |inc: &Incumbent| {
                sink.lock().push((inc.energy, inc.found_at));
            }),
        );
        let seen = seen.lock();
        assert!(!seen.is_empty(), "at least the first best must be observed");
        for w in seen.windows(2) {
            assert!(w[1].0 < w[0].0, "energies must strictly improve: {seen:?}");
        }
        assert_eq!(seen.last().unwrap().0, r.energy);
        // Observer must not perturb determinism.
        let r2 = solver.run_sequential(&q, Termination::batches(400));
        assert_eq!(r2.energy, r.energy);
        assert_eq!(r2.best, r.best);
    }

    #[test]
    fn threaded_observer_streams_strictly_improving_incumbents() {
        let q = Arc::new(random_model(40, 0.3, 215));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 2,
            pool_capacity: 8,
            seed: 25,
            ..DabsConfig::default()
        })
        .unwrap();
        let seen: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let r = solver.run_with_observer(
            &q,
            Termination::time(Duration::from_millis(300)),
            Arc::new(move |inc: &Incumbent| {
                sink.lock().push(inc.energy);
            }),
        );
        let seen = seen.lock();
        assert!(!seen.is_empty());
        for w in seen.windows(2) {
            assert!(w[1] < w[0], "energies must strictly improve: {seen:?}");
        }
        assert_eq!(*seen.last().unwrap(), r.energy);
    }
}
