//! The DABS solver (paper §V): host threads + virtual devices.
//!
//! Architecture per Fig. 2: each device is paired with one solution pool and
//! one host thread. The host thread generates target packets by adaptive
//! genetic operations on its pool (occasionally crossing into the ring
//! neighbour's pool), keeps the device's request queue full, and folds
//! returned results back into the pool and the global best.
//!
//! Two execution modes:
//!
//! * [`DabsSolver::run`] — threaded, one virtual device (with
//!   `blocks_per_device` block workers) + one host thread per pool.
//! * [`DabsSolver::run_sequential`] — single-threaded round-robin over
//!   inline devices; bit-for-bit deterministic for a given seed, used by
//!   tests and ablation studies.

use crate::adaptive::{generate_target, select_algorithm, select_operation};
use crate::{
    DabsConfig, FrequencyReport, FrequencyTracker, GeneticOp, IslandRing, PoolEntry, SolutionPool,
};
use crossbeam::channel;
use dabs_gpu_sim::{
    DeviceConfig, DeviceStats, InlineDevice, Packet, SharedBest, StopFlag, VirtualDevice,
};
use dabs_model::{BatchKernel, CsrKernel, DenseKernel, KernelKind, QuboModel, Solution};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use dabs_search::MainAlgorithm;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When to stop a run. Conditions combine with OR; at least one must be set.
#[derive(Debug, Clone, Default)]
pub struct Termination {
    /// Stop as soon as the global best reaches (≤) this energy.
    pub target_energy: Option<i64>,
    /// Stop after this wall-clock time.
    pub time_limit: Option<Duration>,
    /// Stop after this many batches (summed over all devices).
    pub max_batches: Option<u64>,
    /// External cancellation hook: stop as soon as this flag trips. The flag
    /// is owned by the caller (a job runtime, a signal handler, …) and may
    /// already be tripped when the run starts — the run then returns without
    /// executing a batch. Checked between batches, so cancellation latency
    /// is one batch, not one run.
    pub stop: Option<Arc<StopFlag>>,
}

impl Termination {
    /// Run until `target` is reached (no safety net — combine with a limit
    /// for non-trivial instances).
    pub fn target(target: i64) -> Self {
        Self {
            target_energy: Some(target),
            ..Self::default()
        }
    }

    /// Run for a fixed wall-clock budget.
    pub fn time(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            ..Self::default()
        }
    }

    /// Run for a fixed number of batches.
    pub fn batches(max: u64) -> Self {
        Self {
            max_batches: Some(max),
            ..Self::default()
        }
    }

    /// Run until the external flag trips (no other condition — the caller is
    /// fully responsible for stopping the run).
    pub fn external(stop: Arc<StopFlag>) -> Self {
        Self {
            stop: Some(stop),
            ..Self::default()
        }
    }

    /// Add a target energy.
    pub fn with_target(mut self, target: i64) -> Self {
        self.target_energy = Some(target);
        self
    }

    /// Add a time limit.
    pub fn with_time(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Add a batch limit.
    pub fn with_batches(mut self, max: u64) -> Self {
        self.max_batches = Some(max);
        self
    }

    /// Add an external cancellation flag.
    pub fn with_stop(mut self, stop: Arc<StopFlag>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Has the external flag (if any) tripped?
    #[inline]
    pub fn stop_requested(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.is_stopped())
    }

    fn validate(&self) -> Result<(), String> {
        if self.target_energy.is_none()
            && self.time_limit.is_none()
            && self.max_batches.is_none()
            && self.stop.is_none()
        {
            return Err("termination must set at least one condition".into());
        }
        Ok(())
    }
}

/// A new global-best solution, as delivered to an incumbent observer.
#[derive(Debug, Clone)]
pub struct Incumbent {
    /// The improving solution.
    pub solution: Solution,
    /// Its energy — strictly lower than every previously observed incumbent
    /// of the same run.
    pub energy: i64,
    /// Wall-clock offset from the start of the run.
    pub found_at: Duration,
}

/// Callback invoked on every new best-energy incumbent of a run.
///
/// Invocations are serialized and strictly improving (each call carries a
/// lower energy than the previous one), in both execution modes. The
/// callback runs on a solver thread while an internal lock is held: keep it
/// fast (push to a channel, update an atomic) and never call back into the
/// solver from inside it.
pub type IncumbentObserver = Arc<dyn Fn(&Incumbent) + Send + Sync>;

/// Outcome of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveResult {
    /// Best solution found.
    pub best: Solution,
    /// Its energy.
    pub energy: i64,
    /// Wall-clock time at which the final best was first observed — the TTS
    /// when the target was reached.
    pub time_to_best: Duration,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Batches executed across all devices.
    pub batches: u64,
    /// Bit flips executed across all devices.
    pub flips: u64,
    /// Whether the target energy (if any) was reached.
    pub reached_target: bool,
    /// Table-V-style execution frequencies.
    pub frequencies: FrequencyReport,
    /// The (algorithm, operation) pair whose batch first produced the final
    /// best solution (Table VI).
    pub first_finder: Option<(MainAlgorithm, GeneticOp)>,
    /// Pool restarts triggered by the diversity watchdog.
    pub restarts: u32,
}

/// A sibling incumbent used to seed a unit run (incumbent broadcast: a unit
/// scheduled after its job already found something starts from that best,
/// not from scratch).
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// The incumbent solution.
    pub solution: Solution,
    /// Its energy; the unit's observer threshold starts here, so only strict
    /// improvements over the warm start are reported.
    pub energy: i64,
}

/// Outcome of one unit run: the assembled [`SolveResult`] plus whether its
/// `best` is a genuine solution. A unit revoked before its first batch (and
/// given no warm start) carries the placeholder zeros/energy-0 result;
/// `found = false` keeps that placeholder from winning a merge on energy.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    pub result: SolveResult,
    pub found: bool,
}

impl UnitOutcome {
    /// Fold a sibling unit's outcome into this one, producing the job-level
    /// result a client sees: the best solution by minimum energy among units
    /// that found one (ties keep `self`, so folding units in submission
    /// order is deterministic), summed work counters (`batches`, `flips`,
    /// `restarts`), the maximum `elapsed` (units overlap in wall time; a sum
    /// would double-count), OR-ed `reached_target`, merged frequency tables,
    /// and the winning unit's `time_to_best`/`first_finder`.
    pub fn merge(self, other: UnitOutcome) -> UnitOutcome {
        let found = self.found || other.found;
        let other_wins = other.found && (!self.found || other.result.energy < self.result.energy);
        let (mut base, add) = if other_wins {
            (other.result, self.result)
        } else {
            (self.result, other.result)
        };
        base.batches += add.batches;
        base.flips += add.flips;
        base.restarts += add.restarts;
        base.elapsed = base.elapsed.max(add.elapsed);
        base.reached_target |= add.reached_target;
        base.frequencies.merge(&add.frequencies);
        UnitOutcome {
            result: base,
            found,
        }
    }
}

/// Shared record of the best solution across all pools/devices.
struct GlobalBest {
    /// Fast-path energy for lock-free checks.
    energy: AtomicI64,
    detail: Mutex<BestDetail>,
    /// Incumbent callback; invoked under the `detail` lock so deliveries are
    /// serialized and strictly improving even with many host threads racing.
    observer: Option<IncumbentObserver>,
}

#[derive(Debug)]
struct BestDetail {
    solution: Option<Solution>,
    energy: i64,
    found_at: Duration,
    finder: Option<(MainAlgorithm, GeneticOp)>,
}

impl GlobalBest {
    fn new(observer: Option<IncumbentObserver>) -> Self {
        Self {
            energy: AtomicI64::new(i64::MAX),
            detail: Mutex::new(BestDetail {
                solution: None,
                energy: i64::MAX,
                found_at: Duration::ZERO,
                finder: None,
            }),
            observer,
        }
    }

    /// Record a candidate; cheap when not an improvement.
    fn offer(
        &self,
        solution: &Solution,
        energy: i64,
        found_at: Duration,
        finder: (MainAlgorithm, GeneticOp),
    ) {
        if energy >= self.energy.load(Ordering::Relaxed) {
            return;
        }
        let mut d = self.detail.lock();
        if energy < d.energy {
            d.energy = energy;
            d.solution = Some(solution.clone());
            d.found_at = found_at;
            d.finder = Some(finder);
            self.energy.store(energy, Ordering::Relaxed);
            if let Some(obs) = &self.observer {
                obs(&Incumbent {
                    solution: solution.clone(),
                    energy,
                    found_at,
                });
            }
        }
    }

    fn current(&self) -> i64 {
        self.energy.load(Ordering::Relaxed)
    }
}

/// The multi-pool adaptive solver.
#[derive(Debug, Clone)]
pub struct DabsSolver {
    config: DabsConfig,
}

impl DabsSolver {
    /// Build a solver, validating the configuration.
    pub fn new(config: DabsConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DabsConfig {
        &self.config
    }

    /// Threaded run: `devices` virtual devices with `blocks_per_device`
    /// workers each, plus one host thread per device.
    pub fn run(&self, model: &Arc<QuboModel>, termination: Termination) -> SolveResult {
        self.run_observed(model, termination, None)
    }

    /// Threaded run that additionally invokes `observer` on every new
    /// global-best incumbent (see [`IncumbentObserver`] for the delivery
    /// contract). Used by the server runtime to stream incumbents to
    /// subscribed clients and by the CLI for live progress.
    pub fn run_with_observer(
        &self,
        model: &Arc<QuboModel>,
        termination: Termination,
        observer: IncumbentObserver,
    ) -> SolveResult {
        self.run_observed(model, termination, Some(observer))
    }

    fn run_observed(
        &self,
        model: &Arc<QuboModel>,
        termination: Termination,
        observer: Option<IncumbentObserver>,
    ) -> SolveResult {
        termination.validate().expect("invalid termination");
        let n = model.n();
        let cfg = &self.config;
        let start = Instant::now();

        let ring = IslandRing::new(cfg.devices, cfg.pool_capacity, cfg.dedup);
        let mut seeder = SplitMix64::new(cfg.seed);
        for d in 0..cfg.devices {
            let mut rng = Xorshift64Star::new(seeder.next_u64());
            ring.pool(d)
                .lock()
                .fill_random(n, &cfg.algorithms, &cfg.operations, &mut rng);
        }

        let tracker = Arc::new(FrequencyTracker::new());
        let global = Arc::new(GlobalBest::new(observer));
        let stop = Arc::new(StopFlag::new());
        let restarts = Arc::new(AtomicI64::new(0));
        let mut device_stats = Vec::new();
        let mut device_handles = Vec::new();
        let mut host_handles = Vec::new();

        for d in 0..cfg.devices {
            let (req_tx, req_rx) = channel::bounded::<Packet>(cfg.blocks_per_device * 2);
            let (res_tx, res_rx) = channel::unbounded::<Packet>();
            let stats = Arc::new(DeviceStats::new());
            device_stats.push(Arc::clone(&stats));
            let dev_seed = seeder.next_u64();
            device_handles.push(VirtualDevice::spawn(
                Arc::clone(model),
                DeviceConfig {
                    blocks: cfg.blocks_per_device,
                    params: cfg.params,
                    seed: dev_seed,
                },
                req_rx,
                res_tx,
                Arc::new(SharedBest::new()),
                Arc::clone(&stop),
                stats,
            ));

            let host_seed = seeder.next_u64();
            let pool = Arc::clone(ring.pool(d));
            let neighbor = ring.neighbor(d).cloned();
            let tracker = Arc::clone(&tracker);
            let global = Arc::clone(&global);
            let stop = Arc::clone(&stop);
            let restarts = Arc::clone(&restarts);
            let config = cfg.clone();
            host_handles.push(std::thread::spawn(move || {
                host_loop(
                    n,
                    &config,
                    host_seed,
                    &pool,
                    neighbor.as_ref(),
                    req_tx,
                    res_rx,
                    &tracker,
                    &global,
                    &stop,
                    &restarts,
                    start,
                );
            }));
        }

        // Supervisor: enforce the termination conditions.
        loop {
            if termination.stop_requested() {
                break;
            }
            if let Some(t) = termination.target_energy {
                if global.current() <= t {
                    break;
                }
            }
            if let Some(limit) = termination.time_limit {
                if start.elapsed() >= limit {
                    break;
                }
            }
            if let Some(maxb) = termination.max_batches {
                let total: u64 = device_stats.iter().map(|s| s.batches()).sum();
                if total >= maxb {
                    break;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        stop.stop();
        for h in host_handles {
            let _ = h.join();
        }
        for h in device_handles {
            h.join();
        }

        let elapsed = start.elapsed();
        let batches: u64 = device_stats.iter().map(|s| s.batches()).sum();
        let flips: u64 = device_stats.iter().map(|s| s.flips()).sum();
        let detail = global.detail.lock();
        let reached = termination
            .target_energy
            .map(|t| detail.energy <= t)
            .unwrap_or(false);
        SolveResult {
            best: detail
                .solution
                .clone()
                .unwrap_or_else(|| Solution::zeros(n)),
            energy: if detail.solution.is_some() {
                detail.energy
            } else {
                0
            },
            time_to_best: detail.found_at,
            elapsed,
            batches,
            flips,
            reached_target: reached,
            frequencies: tracker.report(),
            first_finder: detail.finder,
            restarts: restarts.load(Ordering::Relaxed) as u32,
        }
    }

    /// Deterministic single-threaded run: round-robin over inline devices.
    /// `max_batches` termination is exact in this mode.
    pub fn run_sequential(&self, model: &QuboModel, termination: Termination) -> SolveResult {
        self.run_sequential_observed(model, termination, None)
    }

    /// Sequential run with an incumbent observer. The observer does not
    /// perturb the search: results are bit-for-bit identical to
    /// [`DabsSolver::run_sequential`] with the same seed.
    pub fn run_sequential_with_observer(
        &self,
        model: &QuboModel,
        termination: Termination,
        observer: IncumbentObserver,
    ) -> SolveResult {
        self.run_sequential_observed(model, termination, Some(observer))
    }

    fn run_sequential_observed(
        &self,
        model: &QuboModel,
        termination: Termination,
        observer: Option<IncumbentObserver>,
    ) -> SolveResult {
        // One unit, stepped to its own termination: bit-for-bit the loop
        // this method ran before units existed.
        let mut unit = self.start_unit(model, termination, observer, None);
        unit.step(u64::MAX);
        unit.finish().result
    }

    /// Begin a resumable sequential *unit*: the same deterministic
    /// round-robin loop as [`DabsSolver::run_sequential`], but paused and
    /// resumed in caller-controlled batch quanta ([`UnitRun::step`]) so a
    /// scheduler can interleave many jobs' units on one thread, split a
    /// unit's remaining budget, or revoke it between quanta.
    ///
    /// `warm` seeds the unit with a sibling's incumbent: the solution is
    /// inserted into pool 0, every device's resident block state starts from
    /// it, and the unit's best (hence its observer threshold) starts at its
    /// energy, so the observer fires only on strict improvements over the
    /// warm start. With `warm = None`, stepping a unit to termination is
    /// bit-for-bit identical to [`DabsSolver::run_sequential`] under the
    /// same seed — the RNG seed stream is drawn identically either way.
    pub fn start_unit<'m>(
        &self,
        model: &'m QuboModel,
        termination: Termination,
        observer: Option<IncumbentObserver>,
        warm: Option<WarmStart>,
    ) -> UnitRun<'m> {
        // Monomorphize the whole sequential loop on the model's selected
        // energy-kernel backend (the threaded path dispatches inside each
        // block worker instead — see `dabs_gpu_sim::VirtualDevice::spawn`).
        let inner = match model.kernel_kind() {
            KernelKind::Dense => UnitInner::Dense(SeqEngine::new(
                self.config.clone(),
                model,
                DenseKernel::new(model),
                termination,
                observer,
                warm,
            )),
            KernelKind::Csr => UnitInner::Csr(SeqEngine::new(
                self.config.clone(),
                model,
                CsrKernel::new(model),
                termination,
                observer,
                warm,
            )),
        };
        UnitRun { inner }
    }
}

/// A paused-and-resumable sequential solver run (see
/// [`DabsSolver::start_unit`]). Erases the energy-kernel monomorphization so
/// schedulers can hold units of different jobs in one collection.
pub struct UnitRun<'m> {
    inner: UnitInner<'m>,
}

enum UnitInner<'m> {
    Csr(SeqEngine<'m, CsrKernel<'m>>),
    Dense(SeqEngine<'m, DenseKernel<'m>>),
}

impl<'m> UnitRun<'m> {
    /// Advance up to `quota` batches. Returns `true` when the unit hit one
    /// of its termination conditions (further steps are no-ops), `false`
    /// when the quota ran out first — the unit is paused and resumable.
    pub fn step(&mut self, quota: u64) -> bool {
        match &mut self.inner {
            UnitInner::Csr(e) => e.step(quota),
            UnitInner::Dense(e) => e.step(quota),
        }
    }

    /// Batches executed so far by this unit.
    pub fn batches(&self) -> u64 {
        match &self.inner {
            UnitInner::Csr(e) => e.batches,
            UnitInner::Dense(e) => e.batches,
        }
    }

    /// Best energy seen so far (including a warm start), `None` before the
    /// first solution.
    pub fn best_energy(&self) -> Option<i64> {
        let e = match &self.inner {
            UnitInner::Csr(e) => e.best_energy,
            UnitInner::Dense(e) => e.best_energy,
        };
        (e != i64::MAX).then_some(e)
    }

    /// Whether a termination condition has been hit.
    pub fn terminated(&self) -> bool {
        match &self.inner {
            UnitInner::Csr(e) => e.done,
            UnitInner::Dense(e) => e.done,
        }
    }

    /// Consume the unit and assemble its outcome.
    pub fn finish(self) -> UnitOutcome {
        match self.inner {
            UnitInner::Csr(e) => e.finish(),
            UnitInner::Dense(e) => e.finish(),
        }
    }
}

impl std::fmt::Debug for UnitRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitRun")
            .field("batches", &self.batches())
            .field("best", &self.best_energy())
            .field("terminated", &self.terminated())
            .finish()
    }
}

/// The sequential solver loop, held as resumable state instead of a stack
/// frame: pools, host RNGs, inline devices, and the running best.
struct SeqEngine<'m, K: BatchKernel> {
    cfg: DabsConfig,
    n: usize,
    termination: Termination,
    observer: Option<IncumbentObserver>,
    pools: Vec<SolutionPool>,
    host_rngs: Vec<Xorshift64Star>,
    devices: Vec<InlineDevice<'m, K>>,
    tracker: FrequencyTracker,
    obs: crate::obs::ObsAccumulator,
    best_solution: Option<Solution>,
    best_energy: i64,
    found_at: Duration,
    finder: Option<(MainAlgorithm, GeneticOp)>,
    batches: u64,
    restarts: u32,
    start: Instant,
    next_device: usize,
    done: bool,
}

impl<'m, K: BatchKernel> SeqEngine<'m, K> {
    fn new(
        cfg: DabsConfig,
        model: &'m QuboModel,
        kernel: K,
        termination: Termination,
        observer: Option<IncumbentObserver>,
        warm: Option<WarmStart>,
    ) -> Self {
        termination.validate().expect("invalid termination");
        let n = model.n();
        let start = Instant::now();

        let mut seeder = SplitMix64::new(cfg.seed);
        let mut pools: Vec<SolutionPool> = Vec::with_capacity(cfg.devices);
        let mut host_rngs: Vec<Xorshift64Star> = Vec::with_capacity(cfg.devices);
        for _ in 0..cfg.devices {
            let mut pool = SolutionPool::new(cfg.pool_capacity, cfg.dedup);
            let mut rng = Xorshift64Star::new(seeder.next_u64());
            pool.fill_random(n, &cfg.algorithms, &cfg.operations, &mut rng);
            pools.push(pool);
            host_rngs.push(rng);
        }
        let mut devices: Vec<InlineDevice<'m, K>> = (0..cfg.devices)
            .map(|_| InlineDevice::with_kernel(model, kernel, cfg.params, seeder.next_u64()))
            .collect();

        let mut best_solution: Option<Solution> = None;
        let mut best_energy = i64::MAX;
        if let Some(w) = warm {
            // Seed after the draws above so a warm unit consumes the seed
            // stream exactly like a cold one.
            pools[0].insert(PoolEntry {
                solution: w.solution.clone(),
                energy: w.energy,
                algorithm: MainAlgorithm::ALL[0],
                operation: GeneticOp::Random,
            });
            for dev in &mut devices {
                dev.reset_resident(&w.solution);
            }
            best_energy = w.energy;
            best_solution = Some(w.solution);
        }

        Self {
            cfg,
            n,
            termination,
            observer,
            pools,
            host_rngs,
            devices,
            tracker: FrequencyTracker::new(),
            obs: crate::obs::ObsAccumulator::new(),
            best_solution,
            best_energy,
            found_at: Duration::ZERO,
            finder: None,
            batches: 0,
            restarts: 0,
            start,
            next_device: 0,
            done: false,
        }
    }

    fn step(&mut self, quota: u64) -> bool {
        let mut ran = 0u64;
        while !self.done {
            if ran >= quota {
                return false;
            }
            // Check the external flag before (not after) the batch so an
            // already-tripped flag returns without touching a device.
            if self.termination.stop_requested() {
                self.done = true;
                break;
            }
            self.one_batch();
            ran += 1;
            if let Some(t) = self.termination.target_energy {
                if self.best_energy <= t {
                    self.done = true;
                    break;
                }
            }
            if let Some(maxb) = self.termination.max_batches {
                if self.batches >= maxb {
                    self.done = true;
                    break;
                }
            }
            if let Some(limit) = self.termination.time_limit {
                if self.start.elapsed() >= limit {
                    self.done = true;
                    break;
                }
            }
        }
        true
    }

    fn one_batch(&mut self) {
        let d = self.next_device;
        self.next_device = (d + 1) % self.cfg.devices;
        let cfg = &self.cfg;
        let n = self.n;
        // adaptive choice + target generation on pool d
        let (packet, algo, op) = {
            let pool = &self.pools[d];
            let neighbor_idx = (d + 1) % cfg.devices;
            let neighbor = (cfg.devices > 1).then(|| &self.pools[neighbor_idx]);
            let rng = &mut self.host_rngs[d];
            let algo = select_algorithm(pool, cfg, rng);
            let op = select_operation(pool, cfg, rng);
            let target = generate_target(op, pool, neighbor, n, cfg, rng);
            (Packet::request(target, algo, op.index() as u8), algo, op)
        };
        self.tracker.record_dispatch(algo, op);
        // Deltas around the batch (three relaxed loads) feed the sampled
        // observability tally; the flip loop itself is untouched.
        let flips_before = self.devices[d].stats().flips();
        let reds_before = self.devices[d].seg_reductions();
        let result = self.devices[d].process(packet);
        let flips_delta = self.devices[d].stats().flips() - flips_before;
        let reds_delta = self.devices[d].seg_reductions() - reds_before;
        self.batches += 1;
        let energy = result.energy.expect("device results carry energy");
        let improved = energy < self.best_energy;
        self.obs
            .on_batch(algo.index(), flips_delta, reds_delta, improved);
        if self.cfg.params.batch_lanes >= 64 {
            self.obs.on_bulk(flips_delta);
        }
        if energy < self.best_energy {
            self.best_energy = energy;
            self.best_solution = Some(result.solution.clone());
            self.found_at = self.start.elapsed();
            self.finder = Some((algo, op));
            if let Some(obs) = &self.observer {
                obs(&Incumbent {
                    solution: result.solution.clone(),
                    energy,
                    found_at: self.found_at,
                });
            }
        }
        self.pools[d].insert(PoolEntry {
            solution: result.solution,
            energy,
            algorithm: algo,
            operation: op,
        });
        if let Some(threshold) = self.cfg.restart_diversity {
            let pool = &mut self.pools[d];
            if pool.len() == pool.capacity()
                && pool.iter().all(|e| e.energy < i64::MAX)
                && pool.diversity() < threshold
            {
                let rng = &mut self.host_rngs[d];
                pool.fill_random(n, &self.cfg.algorithms, &self.cfg.operations, rng);
                self.restarts += 1;
            }
        }
    }

    fn finish(self) -> UnitOutcome {
        let flips: u64 = self.devices.iter().map(|dv| dv.stats().flips()).sum();
        let reached = self
            .termination
            .target_energy
            .map(|t| self.best_energy <= t)
            .unwrap_or(false);
        let found = self.best_solution.is_some();
        UnitOutcome {
            result: SolveResult {
                best: self
                    .best_solution
                    .unwrap_or_else(|| Solution::zeros(self.n)),
                energy: if self.best_energy == i64::MAX {
                    0
                } else {
                    self.best_energy
                },
                time_to_best: self.found_at,
                elapsed: self.start.elapsed(),
                batches: self.batches,
                flips,
                reached_target: reached,
                frequencies: self.tracker.report(),
                first_finder: self.finder,
                restarts: self.restarts,
            },
            found,
        }
    }
}

/// Host thread body: feed one device from one pool.
#[allow(clippy::too_many_arguments)]
fn host_loop(
    n: usize,
    config: &DabsConfig,
    seed: u64,
    pool: &Arc<Mutex<SolutionPool>>,
    neighbor: Option<&Arc<Mutex<SolutionPool>>>,
    req_tx: channel::Sender<Packet>,
    res_rx: channel::Receiver<Packet>,
    tracker: &FrequencyTracker,
    global: &GlobalBest,
    stop: &StopFlag,
    restarts: &AtomicI64,
    start: Instant,
) {
    let mut rng = Xorshift64Star::new(seed);
    loop {
        if stop.is_stopped() {
            return;
        }
        // Fold back any finished batches.
        let mut handled = 0;
        while let Ok(result) = res_rx.try_recv() {
            handled += 1;
            let energy = result.energy.expect("device results carry energy");
            let algo = result.algorithm;
            let op = GeneticOp::from_index(result.genetic_op).unwrap_or(GeneticOp::Random);
            global.offer(&result.solution, energy, start.elapsed(), (algo, op));
            let mut p = pool.lock();
            p.insert(PoolEntry {
                solution: result.solution,
                energy,
                algorithm: algo,
                operation: op,
            });
            if let Some(threshold) = config.restart_diversity {
                if p.len() == p.capacity()
                    && p.iter().all(|e| e.energy < i64::MAX)
                    && p.diversity() < threshold
                {
                    p.fill_random(n, &config.algorithms, &config.operations, &mut rng);
                    restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Keep the device's queue topped up.
        if !req_tx.is_full() {
            let (packet, algo, op) = {
                let p = pool.lock();
                let algo = select_algorithm(&p, config, &mut rng);
                let op = select_operation(&p, config, &mut rng);
                let target = match (op, neighbor) {
                    // try_lock, not lock: each host already holds its own
                    // pool here, so two ring neighbours that pick Xrossover
                    // at the same time would block on each other's pool —
                    // an AB-BA deadlock. On contention degrade to the
                    // intra-pool form, same as the single-island case.
                    (GeneticOp::Xrossover, Some(nb)) => match nb.try_lock() {
                        Some(nbp) => generate_target(op, &p, Some(&nbp), n, config, &mut rng),
                        None => generate_target(op, &p, None, n, config, &mut rng),
                    },
                    _ => generate_target(op, &p, None, n, config, &mut rng),
                };
                (Packet::request(target, algo, op.index() as u8), algo, op)
            };
            if req_tx.send(packet).is_err() {
                return; // device gone
            }
            tracker.record_dispatch(algo, op);
        } else if handled == 0 {
            // Queue full and nothing returned: block briefly on a result.
            match res_rx.recv_timeout(Duration::from_millis(1)) {
                Ok(result) => {
                    let energy = result.energy.expect("device results carry energy");
                    let algo = result.algorithm;
                    let op = GeneticOp::from_index(result.genetic_op).unwrap_or(GeneticOp::Random);
                    global.offer(&result.solution, energy, start.elapsed(), (algo, op));
                    pool.lock().insert(PoolEntry {
                        solution: result.solution,
                        energy,
                        algorithm: algo,
                        operation: op,
                    });
                }
                Err(channel::RecvTimeoutError::Timeout) => {}
                Err(channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_model::QuboBuilder;

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    fn brute_force(q: &QuboModel) -> i64 {
        let n = q.n();
        let mut best = i64::MAX;
        for v in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(q.energy(&Solution::from_bits(&bits)));
        }
        best
    }

    #[test]
    fn sequential_finds_small_optimum() {
        let q = random_model(16, 0.4, 201);
        let opt = brute_force(&q);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 1,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::target(opt).with_batches(5_000));
        assert!(r.reached_target, "missed optimum {opt}, got {}", r.energy);
        assert_eq!(q.energy(&r.best), r.energy);
        assert_eq!(r.energy, opt);
    }

    #[test]
    fn sequential_is_deterministic() {
        let q = random_model(24, 0.3, 202);
        let mk = || {
            DabsSolver::new(DabsConfig {
                devices: 3,
                blocks_per_device: 1,
                pool_capacity: 8,
                seed: 77,
                ..DabsConfig::default()
            })
            .unwrap()
        };
        let a = mk().run_sequential(&q, Termination::batches(60));
        let b = mk().run_sequential(&q, Termination::batches(60));
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.best, b.best);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.frequencies, b.frequencies);
        assert_eq!(a.first_finder, b.first_finder);
    }

    #[test]
    fn sequential_batch_limit_is_exact() {
        let q = random_model(20, 0.3, 203);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 5,
            seed: 3,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(17));
        assert_eq!(r.batches, 17);
        assert!(!r.reached_target);
        assert!(r.flips > 0);
    }

    #[test]
    fn sequential_bulk_mode_solves_and_counts_lane_flips() {
        let q = random_model(16, 0.4, 206);
        let opt = brute_force(&q);
        let mut cfg = DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 11,
            ..DabsConfig::default()
        };
        cfg.params.batch_lanes = 64;
        let bulk_before = crate::obs::solver_obs().bulk_flips.get();
        let solver = DabsSolver::new(cfg).unwrap();
        let r = solver.run_sequential(&q, Termination::target(opt).with_batches(400));
        assert_eq!(q.energy(&r.best), r.energy);
        assert_eq!(r.energy, opt, "bulk mode missed the optimum");
        assert!(r.flips > 0);
        assert!(
            crate::obs::solver_obs().bulk_flips.get() > bulk_before,
            "bulk legs must feed the solver.bulk_flips counter"
        );
    }

    #[test]
    fn sequential_bulk_mode_is_deterministic() {
        let q = random_model(24, 0.3, 207);
        let mk = || {
            let mut cfg = DabsConfig {
                devices: 2,
                blocks_per_device: 1,
                pool_capacity: 8,
                seed: 78,
                ..DabsConfig::default()
            };
            cfg.params.batch_lanes = 64;
            DabsSolver::new(cfg).unwrap()
        };
        let a = mk().run_sequential(&q, Termination::batches(30));
        let b = mk().run_sequential(&q, Termination::batches(30));
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.best, b.best);
        assert_eq!(a.flips, b.flips);
    }

    #[test]
    fn threaded_bulk_mode_reaches_a_valid_result() {
        let q = Arc::new(random_model(20, 0.3, 208));
        let mut cfg = DabsConfig {
            devices: 2,
            blocks_per_device: 2,
            pool_capacity: 8,
            seed: 21,
            ..DabsConfig::default()
        };
        cfg.params.batch_lanes = 64;
        let solver = DabsSolver::new(cfg).unwrap();
        let r = solver.run(&q, Termination::batches(40));
        assert_eq!(q.energy(&r.best), r.energy);
        assert!(r.flips > 0);
    }

    #[test]
    fn frequencies_cover_portfolio() {
        let q = random_model(20, 0.3, 204);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 5,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(300));
        assert_eq!(r.frequencies.total(), 300);
        // with 5% exploration over 300 draws, every algorithm should appear
        let nonzero = r
            .frequencies
            .algo_executed
            .iter()
            .filter(|&&c| c > 0)
            .count();
        assert_eq!(nonzero, 5, "{:?}", r.frequencies.algo_executed);
    }

    #[test]
    fn abs_preset_uses_only_cyclicmin_and_crossmutate() {
        let q = random_model(20, 0.3, 205);
        let solver = DabsSolver::new(DabsConfig {
            seed: 6,
            ..DabsConfig::abs_baseline(2, 1)
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(100));
        for a in MainAlgorithm::ALL {
            let count = r.frequencies.algo_executed[a.index()];
            if a == MainAlgorithm::CyclicMin {
                assert_eq!(count, 100);
            } else {
                assert_eq!(count, 0, "{} executed under ABS preset", a.name());
            }
        }
        assert_eq!(
            r.frequencies.op_executed[GeneticOp::CrossMutate.index()],
            100
        );
    }

    #[test]
    fn first_finder_is_recorded() {
        let q = random_model(16, 0.4, 206);
        let opt = brute_force(&q);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 7,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::target(opt).with_batches(5_000));
        assert!(r.first_finder.is_some());
        let (algo, op) = r.first_finder.unwrap();
        assert!(MainAlgorithm::ALL.contains(&algo));
        assert!(GeneticOp::DABS.contains(&op));
    }

    #[test]
    fn threaded_run_reaches_small_optimum() {
        let q = Arc::new(random_model(18, 0.4, 207));
        let opt = brute_force(&q);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 2,
            pool_capacity: 10,
            seed: 8,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run(
            &q,
            Termination::target(opt).with_time(Duration::from_secs(30)),
        );
        assert!(
            r.reached_target,
            "threaded run missed optimum: {}",
            r.energy
        );
        assert_eq!(q.energy(&r.best), opt);
        assert!(r.time_to_best <= r.elapsed);
        assert!(r.batches > 0);
    }

    #[test]
    fn threaded_time_limit_respected() {
        let q = Arc::new(random_model(40, 0.3, 208));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 10,
            seed: 9,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run(&q, Termination::time(Duration::from_millis(300)));
        assert!(
            r.elapsed < Duration::from_secs(10),
            "run should stop promptly"
        );
        assert!(r.batches > 0, "some work must have happened");
    }

    #[test]
    fn restart_watchdog_fires_on_degenerate_pools() {
        // A trivially-optimizable model makes every batch return the same
        // optimum, collapsing diversity; with a generous threshold the
        // watchdog must fire.
        let q = random_model(12, 0.6, 209);
        let solver = DabsSolver::new(DabsConfig {
            devices: 1,
            blocks_per_device: 1,
            pool_capacity: 3,
            dedup: false,
            restart_diversity: Some(6.0),
            seed: 10,
            ..DabsConfig::default()
        })
        .unwrap();
        let r = solver.run_sequential(&q, Termination::batches(400));
        assert!(r.restarts > 0, "expected at least one pool restart");
    }

    #[test]
    #[should_panic(expected = "at least one condition")]
    fn empty_termination_rejected() {
        let q = random_model(10, 0.5, 210);
        let solver = DabsSolver::new(DabsConfig::default()).unwrap();
        solver.run_sequential(&q, Termination::default());
    }

    #[test]
    fn tripped_stop_flag_returns_promptly_from_sequential() {
        let q = random_model(24, 0.3, 211);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 21,
            ..DabsConfig::default()
        })
        .unwrap();
        let stop = Arc::new(StopFlag::new());
        stop.stop();
        // A generous time limit that must NOT be consumed.
        let term = Termination::time(Duration::from_secs(60)).with_stop(Arc::clone(&stop));
        let t0 = Instant::now();
        let r = solver.run_sequential(&q, term);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "must return promptly"
        );
        assert_eq!(r.batches, 0, "no batch may run under a tripped flag");
        assert_eq!(r.energy, 0);
        assert_eq!(r.best, Solution::zeros(24));

        // Pool state is rebuilt per run: the same solver must still work.
        let r2 = solver.run_sequential(&q, Termination::batches(50));
        assert_eq!(r2.batches, 50);
        assert!(r2.flips > 0);
    }

    #[test]
    fn tripped_stop_flag_returns_promptly_from_threaded() {
        let q = Arc::new(random_model(40, 0.3, 212));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 22,
            ..DabsConfig::default()
        })
        .unwrap();
        let stop = Arc::new(StopFlag::new());
        stop.stop();
        let term = Termination::time(Duration::from_secs(60)).with_stop(Arc::clone(&stop));
        let t0 = Instant::now();
        let r = solver.run(&q, term);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "must return promptly, took {:?}",
            t0.elapsed()
        );
        // Re-running with a fresh termination must still make progress.
        let r2 = solver.run(&q, Termination::time(Duration::from_millis(100)));
        assert!(r2.batches > 0);
        let _ = r;
    }

    #[test]
    fn mid_run_cancellation_stops_both_modes() {
        let q = Arc::new(random_model(48, 0.3, 213));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 23,
            ..DabsConfig::default()
        })
        .unwrap();
        for threaded in [false, true] {
            let stop = Arc::new(StopFlag::new());
            let canceller = {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(50));
                    stop.stop();
                })
            };
            let term = Termination::external(Arc::clone(&stop));
            let t0 = Instant::now();
            let r = if threaded {
                solver.run(&q, term)
            } else {
                solver.run_sequential(&q, term)
            };
            canceller.join().unwrap();
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "threaded={threaded}: cancel not honored, took {:?}",
                t0.elapsed()
            );
            assert!(r.batches > 0, "threaded={threaded}: ran before cancel");
            assert!(!r.reached_target);
        }
    }

    #[test]
    fn sequential_observer_streams_strictly_improving_incumbents() {
        let q = random_model(32, 0.3, 214);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 24,
            ..DabsConfig::default()
        })
        .unwrap();
        let seen: Arc<Mutex<Vec<(i64, Duration)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let r = solver.run_sequential_with_observer(
            &q,
            Termination::batches(400),
            Arc::new(move |inc: &Incumbent| {
                sink.lock().push((inc.energy, inc.found_at));
            }),
        );
        let seen = seen.lock();
        assert!(!seen.is_empty(), "at least the first best must be observed");
        for w in seen.windows(2) {
            assert!(w[1].0 < w[0].0, "energies must strictly improve: {seen:?}");
        }
        assert_eq!(seen.last().unwrap().0, r.energy);
        // Observer must not perturb determinism.
        let r2 = solver.run_sequential(&q, Termination::batches(400));
        assert_eq!(r2.energy, r.energy);
        assert_eq!(r2.best, r.best);
    }

    #[test]
    fn threaded_observer_streams_strictly_improving_incumbents() {
        let q = Arc::new(random_model(40, 0.3, 215));
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 2,
            pool_capacity: 8,
            seed: 25,
            ..DabsConfig::default()
        })
        .unwrap();
        let seen: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let r = solver.run_with_observer(
            &q,
            Termination::time(Duration::from_millis(300)),
            Arc::new(move |inc: &Incumbent| {
                sink.lock().push(inc.energy);
            }),
        );
        let seen = seen.lock();
        assert!(!seen.is_empty());
        for w in seen.windows(2) {
            assert!(w[1] < w[0], "energies must strictly improve: {seen:?}");
        }
        assert_eq!(*seen.last().unwrap(), r.energy);
    }

    #[test]
    fn unit_stepped_in_chunks_matches_run_sequential_exactly() {
        let q = random_model(24, 0.3, 216);
        let mk = || {
            DabsSolver::new(DabsConfig {
                devices: 3,
                blocks_per_device: 1,
                pool_capacity: 8,
                seed: 91,
                ..DabsConfig::default()
            })
            .unwrap()
        };
        let reference = mk().run_sequential(&q, Termination::batches(120));
        // Same budget, but stepped in ragged quanta through the unit API.
        let mut unit = mk().start_unit(&q, Termination::batches(120), None, None);
        for quota in [1u64, 7, 3, 50] {
            assert!(!unit.step(quota), "must pause before termination");
        }
        assert_eq!(unit.batches(), 61);
        assert!(unit.step(u64::MAX), "must run to termination");
        assert!(unit.terminated());
        let out = unit.finish();
        assert!(out.found);
        assert_eq!(out.result.energy, reference.energy);
        assert_eq!(out.result.best, reference.best);
        assert_eq!(out.result.batches, reference.batches);
        assert_eq!(out.result.flips, reference.flips);
        assert_eq!(out.result.frequencies, reference.frequencies);
        assert_eq!(out.result.first_finder, reference.first_finder);
        assert_eq!(out.result.restarts, reference.restarts);
    }

    #[test]
    fn warm_started_unit_observes_only_strict_improvements() {
        let q = random_model(24, 0.3, 217);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 8,
            seed: 92,
            ..DabsConfig::default()
        })
        .unwrap();
        // A cold run establishes a strong incumbent...
        let cold = solver.run_sequential(&q, Termination::batches(200));
        // ...and a warm unit seeded with it only reports strict improvements.
        let seen: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut unit = solver.start_unit(
            &q,
            Termination::batches(200),
            Some(Arc::new(move |inc: &Incumbent| {
                sink.lock().push(inc.energy);
            })),
            Some(WarmStart {
                solution: cold.best.clone(),
                energy: cold.energy,
            }),
        );
        unit.step(u64::MAX);
        assert_eq!(unit.best_energy().unwrap().min(cold.energy), {
            // warm best is the floor: the unit can only improve on it
            unit.best_energy().unwrap()
        });
        let out = unit.finish();
        assert!(out.found, "warm start alone counts as a found solution");
        assert!(out.result.energy <= cold.energy);
        for e in seen.lock().iter() {
            assert!(*e < cold.energy, "observer fired at non-improvement {e}");
        }
    }

    #[test]
    fn warm_start_with_zero_batches_returns_the_seed() {
        let q = random_model(16, 0.4, 218);
        let solver = DabsSolver::new(DabsConfig {
            devices: 1,
            blocks_per_device: 1,
            pool_capacity: 4,
            seed: 93,
            ..DabsConfig::default()
        })
        .unwrap();
        let seed_sol = Solution::zeros(16);
        let seed_energy = q.energy(&seed_sol);
        let stop = Arc::new(StopFlag::new());
        stop.stop();
        let unit = {
            let mut u = solver.start_unit(
                &q,
                Termination::external(Arc::clone(&stop)),
                None,
                Some(WarmStart {
                    solution: seed_sol.clone(),
                    energy: seed_energy,
                }),
            );
            u.step(u64::MAX);
            u
        };
        let out = unit.finish();
        assert!(out.found);
        assert_eq!(out.result.batches, 0);
        assert_eq!(out.result.energy, seed_energy);
        assert_eq!(out.result.best, seed_sol);
    }

    #[test]
    fn unit_outcome_merge_keeps_min_energy_and_sums_counters() {
        let q = random_model(20, 0.3, 219);
        let solver = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 6,
            seed: 94,
            ..DabsConfig::default()
        })
        .unwrap();
        let mut a = solver.start_unit(&q, Termination::batches(40), None, None);
        a.step(u64::MAX);
        let a = a.finish();
        let solver_b = DabsSolver::new(DabsConfig {
            devices: 2,
            blocks_per_device: 1,
            pool_capacity: 6,
            seed: 95,
            ..DabsConfig::default()
        })
        .unwrap();
        let mut b = solver_b.start_unit(&q, Termination::batches(60), None, None);
        b.step(u64::MAX);
        let b = b.finish();
        let (ea, eb) = (a.result.energy, b.result.energy);
        let merged = a.clone().merge(b.clone());
        assert!(merged.found);
        assert_eq!(merged.result.energy, ea.min(eb));
        assert_eq!(merged.result.batches, 100);
        assert_eq!(merged.result.flips, a.result.flips + b.result.flips);
        assert_eq!(
            merged.result.frequencies.total(),
            a.result.frequencies.total() + b.result.frequencies.total()
        );
        // A not-found placeholder (e.g. a revoked unit) never wins the fold.
        let empty = UnitOutcome {
            result: SolveResult {
                best: Solution::zeros(20),
                energy: 0,
                time_to_best: Duration::ZERO,
                elapsed: Duration::ZERO,
                batches: 0,
                flips: 0,
                reached_target: false,
                frequencies: FrequencyTracker::new().report(),
                first_finder: None,
                restarts: 0,
            },
            found: false,
        };
        let folded = empty.merge(merged.clone());
        assert_eq!(folded.result.energy, ea.min(eb));
        assert_eq!(folded.result.batches, 100);
        assert!(folded.found);
    }
}
