//! Frequency and first-finder instrumentation (paper §VI-D, Tables V–VI).
//!
//! Table V counts how often each main algorithm / genetic operation was
//! *executed*; Table VI counts which pair *first found* the final best
//! solution of a run. The paper's observation that the two distributions
//! differ — what finds good solutions is not what finishes them — is the
//! core evidence for adaptive diversity, so both counters are first-class
//! here.

use crate::GeneticOp;
use dabs_search::MainAlgorithm;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of algorithm slots (5 main algorithms).
pub const N_ALGOS: usize = 5;
/// Number of operation slots (8 DABS ops + CrossMutate).
pub const N_OPS: usize = 9;

/// Thread-safe execution counters, shared by all host threads of one run.
#[derive(Debug, Default)]
pub struct FrequencyTracker {
    algo_executed: [AtomicU64; N_ALGOS],
    op_executed: [AtomicU64; N_OPS],
}

impl FrequencyTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a packet with this pair was dispatched.
    pub fn record_dispatch(&self, algo: MainAlgorithm, op: GeneticOp) {
        self.algo_executed[algo.index()].fetch_add(1, Ordering::Relaxed);
        self.op_executed[op.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot into a serialisable report.
    pub fn report(&self) -> FrequencyReport {
        FrequencyReport {
            algo_executed: self
                .algo_executed
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            op_executed: self
                .op_executed
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Snapshot of execution frequencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyReport {
    /// Dispatch counts indexed by [`MainAlgorithm::index`].
    pub algo_executed: Vec<u64>,
    /// Dispatch counts indexed by [`GeneticOp::index`].
    pub op_executed: Vec<u64>,
}

impl FrequencyReport {
    /// Total packets dispatched.
    pub fn total(&self) -> u64 {
        self.algo_executed.iter().sum()
    }

    /// Percentage share of an algorithm (Table V row format).
    pub fn algo_percent(&self, algo: MainAlgorithm) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.algo_executed[algo.index()] as f64 / total as f64
    }

    /// Percentage share of an operation.
    pub fn op_percent(&self, op: GeneticOp) -> f64 {
        let total: u64 = self.op_executed.iter().sum();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.op_executed[op.index()] as f64 / total as f64
    }

    /// The most-executed algorithm (Table V boldface).
    pub fn top_algorithm(&self) -> MainAlgorithm {
        *MainAlgorithm::ALL
            .iter()
            .max_by_key(|a| self.algo_executed[a.index()])
            .expect("non-empty")
    }

    /// The most-executed operation among the DABS eight.
    pub fn top_operation(&self) -> GeneticOp {
        *GeneticOp::DABS
            .iter()
            .max_by_key(|o| self.op_executed[o.index()])
            .expect("non-empty")
    }

    /// Merge counts from another report (used to aggregate repeated runs).
    pub fn merge(&mut self, other: &FrequencyReport) {
        for (a, b) in self.algo_executed.iter_mut().zip(&other.algo_executed) {
            *a += b;
        }
        for (a, b) in self.op_executed.iter_mut().zip(&other.op_executed) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_counts_accumulate() {
        let t = FrequencyTracker::new();
        t.record_dispatch(MainAlgorithm::MaxMin, GeneticOp::Zero);
        t.record_dispatch(MainAlgorithm::MaxMin, GeneticOp::One);
        t.record_dispatch(MainAlgorithm::CyclicMin, GeneticOp::Zero);
        let r = t.report();
        assert_eq!(r.total(), 3);
        assert_eq!(r.algo_executed[MainAlgorithm::MaxMin.index()], 2);
        assert_eq!(r.op_executed[GeneticOp::Zero.index()], 2);
        assert_eq!(r.top_algorithm(), MainAlgorithm::MaxMin);
        assert_eq!(r.top_operation(), GeneticOp::Zero);
    }

    #[test]
    fn percentages_sum_to_100() {
        let t = FrequencyTracker::new();
        for (i, a) in MainAlgorithm::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                t.record_dispatch(a, GeneticOp::Random);
            }
        }
        let r = t.report();
        let sum: f64 = MainAlgorithm::ALL.iter().map(|&a| r.algo_percent(a)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_percentages_are_zero() {
        let r = FrequencyTracker::new().report();
        assert_eq!(r.algo_percent(MainAlgorithm::MaxMin), 0.0);
        assert_eq!(r.op_percent(GeneticOp::Best), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let t1 = FrequencyTracker::new();
        t1.record_dispatch(MainAlgorithm::RandomMin, GeneticOp::Crossover);
        let t2 = FrequencyTracker::new();
        t2.record_dispatch(MainAlgorithm::RandomMin, GeneticOp::Crossover);
        t2.record_dispatch(MainAlgorithm::MaxMin, GeneticOp::Best);
        let mut r = t1.report();
        r.merge(&t2.report());
        assert_eq!(r.total(), 3);
        assert_eq!(r.algo_executed[MainAlgorithm::RandomMin.index()], 2);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = std::sync::Arc::new(FrequencyTracker::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.record_dispatch(MainAlgorithm::PositiveMin, GeneticOp::Mutation);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.report().total(), 4000);
    }
}
