//! Frequency and first-finder instrumentation (paper §VI-D, Tables V–VI).
//!
//! Table V counts how often each main algorithm / genetic operation was
//! *executed*; Table VI counts which pair *first found* the final best
//! solution of a run. The paper's observation that the two distributions
//! differ — what finds good solutions is not what finishes them — is the
//! core evidence for adaptive diversity, so both counters are first-class
//! here.

use crate::GeneticOp;
use dabs_search::MainAlgorithm;
use serde::json::Json;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of algorithm slots (5 main algorithms).
pub const N_ALGOS: usize = 5;
/// Number of operation slots (8 DABS ops + CrossMutate).
pub const N_OPS: usize = 9;

/// Thread-safe execution counters, shared by all host threads of one run.
#[derive(Debug, Default)]
pub struct FrequencyTracker {
    algo_executed: [AtomicU64; N_ALGOS],
    op_executed: [AtomicU64; N_OPS],
}

impl FrequencyTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a packet with this pair was dispatched.
    pub fn record_dispatch(&self, algo: MainAlgorithm, op: GeneticOp) {
        self.algo_executed[algo.index()].fetch_add(1, Ordering::Relaxed);
        self.op_executed[op.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot into a serialisable report.
    pub fn report(&self) -> FrequencyReport {
        FrequencyReport {
            algo_executed: self
                .algo_executed
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            op_executed: self
                .op_executed
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Snapshot of execution frequencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyReport {
    /// Dispatch counts indexed by [`MainAlgorithm::index`].
    pub algo_executed: Vec<u64>,
    /// Dispatch counts indexed by [`GeneticOp::index`].
    pub op_executed: Vec<u64>,
}

impl FrequencyReport {
    /// Total packets dispatched.
    pub fn total(&self) -> u64 {
        self.algo_executed.iter().sum()
    }

    /// Percentage share of an algorithm (Table V row format).
    pub fn algo_percent(&self, algo: MainAlgorithm) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.algo_executed[algo.index()] as f64 / total as f64
    }

    /// Percentage share of an operation.
    pub fn op_percent(&self, op: GeneticOp) -> f64 {
        let total: u64 = self.op_executed.iter().sum();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.op_executed[op.index()] as f64 / total as f64
    }

    /// The most-executed algorithm (Table V boldface).
    pub fn top_algorithm(&self) -> MainAlgorithm {
        *MainAlgorithm::ALL
            .iter()
            .max_by_key(|a| self.algo_executed[a.index()])
            .expect("non-empty")
    }

    /// The most-executed operation among the DABS eight.
    pub fn top_operation(&self) -> GeneticOp {
        *GeneticOp::DABS
            .iter()
            .max_by_key(|o| self.op_executed[o.index()])
            .expect("non-empty")
    }

    /// Merge counts from another report (used to aggregate repeated runs).
    pub fn merge(&mut self, other: &FrequencyReport) {
        for (a, b) in self.algo_executed.iter_mut().zip(&other.algo_executed) {
            *a += b;
        }
        for (a, b) in self.op_executed.iter_mut().zip(&other.op_executed) {
            *a += b;
        }
    }
}

/// Which way "better" points for a metric (regression detection needs to
/// know whether a smaller candidate value is good news or bad news).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style metrics (flips/s, jobs/s, success rate).
    HigherIsBetter,
    /// Cost-style metrics (energy, latency, time-to-solution).
    LowerIsBetter,
}

impl Direction {
    /// Stable wire name (`"higher_is_better"` / `"lower_is_better"`).
    pub fn name(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher_is_better",
            Direction::LowerIsBetter => "lower_is_better",
        }
    }

    /// Inverse of [`Direction::name`].
    pub fn by_name(name: &str) -> Option<Direction> {
        match name {
            "higher_is_better" => Some(Direction::HigherIsBetter),
            "lower_is_better" => Some(Direction::LowerIsBetter),
            _ => None,
        }
    }
}

/// One named measurement with enough metadata to be diffed across runs.
///
/// Every metric carries a unit (schema validation rejects unitless values)
/// and a regression policy: `gate` marks it as CI-enforced, `tolerance` is
/// the relative slack (fraction of `|baseline|`) a gated metric may move in
/// the *worse* direction before a comparison counts it as a regression.
/// `deterministic` promises that two same-seed runs reproduce the value
/// bit-for-bit — the determinism test in `dabs-bench` holds metrics to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted path within its suite entry, e.g. `"k2000s.best_energy"`.
    pub name: String,
    pub value: f64,
    /// Unit label, e.g. `"energy"`, `"s"`, `"flips/s"`, `"ratio"`. Never empty.
    pub unit: String,
    pub direction: Direction,
    /// Same seed ⇒ identical value (no wall-clock on the measured path).
    pub deterministic: bool,
    /// Enforced by `compare` against a committed baseline.
    pub gate: bool,
    /// Allowed worse-direction drift as a fraction of `|baseline|`.
    pub tolerance: f64,
}

impl Metric {
    /// A recorded-but-unenforced metric (trajectory only).
    pub fn new(
        name: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
        direction: Direction,
    ) -> Self {
        Metric {
            name: name.into(),
            value,
            unit: unit.into(),
            direction,
            deterministic: false,
            gate: false,
            tolerance: 0.0,
        }
    }

    /// Mark as reproducible bit-for-bit under a fixed seed.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Mark as CI-gated with the given relative tolerance.
    pub fn gated(mut self, tolerance: f64) -> Self {
        self.gate = true;
        self.tolerance = tolerance;
        self
    }

    /// How much worse the candidate is than the baseline, in the metric's
    /// worse direction (positive = regressed), as an absolute value delta.
    pub fn worse_by(&self, baseline: f64, candidate: f64) -> f64 {
        match self.direction {
            Direction::HigherIsBetter => baseline - candidate,
            Direction::LowerIsBetter => candidate - baseline,
        }
    }

    /// Serialize (field names are part of the `BENCH_*.json` schema).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(self.name.clone())),
            ("value".into(), Json::Float(self.value)),
            ("unit".into(), Json::str(self.unit.clone())),
            ("direction".into(), Json::str(self.direction.name())),
            ("deterministic".into(), Json::from(self.deterministic)),
            ("gate".into(), Json::from(self.gate)),
            ("tolerance".into(), Json::Float(self.tolerance)),
        ])
    }

    /// Strict inverse of [`Metric::to_json`].
    pub fn from_json(j: &Json) -> Result<Metric, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("metric missing {k:?}"));
        let name = field("name")?
            .as_str()
            .ok_or("metric name must be a string")?
            .to_string();
        let value = field("value")?
            .as_f64()
            .ok_or_else(|| format!("metric {name:?}: value must be a number"))?;
        let unit = field("unit")?
            .as_str()
            .ok_or_else(|| format!("metric {name:?}: unit must be a string"))?
            .to_string();
        let direction = field("direction")?
            .as_str()
            .and_then(Direction::by_name)
            .ok_or_else(|| format!("metric {name:?}: bad direction"))?;
        Ok(Metric {
            deterministic: j.get_bool("deterministic").unwrap_or(false),
            gate: j.get_bool("gate").unwrap_or(false),
            tolerance: j.get("tolerance").and_then(Json::as_f64).unwrap_or(0.0),
            name,
            value,
            unit,
            direction,
        })
    }
}

/// An ordered collection of uniquely named [`Metric`]s — what one benchmark
/// scenario exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a metric. Panics on a duplicate name: scenario code is the
    /// only caller, and a silent overwrite would corrupt the trajectory.
    pub fn push(&mut self, metric: Metric) {
        assert!(
            self.get(&metric.name).is_none(),
            "duplicate metric name {:?}",
            metric.name
        );
        self.metrics.push(metric);
    }

    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    pub fn to_json(&self) -> Json {
        Json::Arr(self.metrics.iter().map(Metric::to_json).collect())
    }

    pub fn from_json(j: &Json) -> Result<MetricSet, String> {
        let items = j.as_arr().ok_or("metrics must be an array")?;
        let mut set = MetricSet::new();
        for item in items {
            let m = Metric::from_json(item)?;
            if set.get(&m.name).is_some() {
                return Err(format!("duplicate metric name {:?}", m.name));
            }
            set.metrics.push(m);
        }
        Ok(set)
    }
}

impl IntoIterator for MetricSet {
    type Item = Metric;
    type IntoIter = std::vec::IntoIter<Metric>;
    fn into_iter(self) -> Self::IntoIter {
        self.metrics.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_counts_accumulate() {
        let t = FrequencyTracker::new();
        t.record_dispatch(MainAlgorithm::MaxMin, GeneticOp::Zero);
        t.record_dispatch(MainAlgorithm::MaxMin, GeneticOp::One);
        t.record_dispatch(MainAlgorithm::CyclicMin, GeneticOp::Zero);
        let r = t.report();
        assert_eq!(r.total(), 3);
        assert_eq!(r.algo_executed[MainAlgorithm::MaxMin.index()], 2);
        assert_eq!(r.op_executed[GeneticOp::Zero.index()], 2);
        assert_eq!(r.top_algorithm(), MainAlgorithm::MaxMin);
        assert_eq!(r.top_operation(), GeneticOp::Zero);
    }

    #[test]
    fn percentages_sum_to_100() {
        let t = FrequencyTracker::new();
        for (i, a) in MainAlgorithm::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                t.record_dispatch(a, GeneticOp::Random);
            }
        }
        let r = t.report();
        let sum: f64 = MainAlgorithm::ALL.iter().map(|&a| r.algo_percent(a)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_percentages_are_zero() {
        let r = FrequencyTracker::new().report();
        assert_eq!(r.algo_percent(MainAlgorithm::MaxMin), 0.0);
        assert_eq!(r.op_percent(GeneticOp::Best), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let t1 = FrequencyTracker::new();
        t1.record_dispatch(MainAlgorithm::RandomMin, GeneticOp::Crossover);
        let t2 = FrequencyTracker::new();
        t2.record_dispatch(MainAlgorithm::RandomMin, GeneticOp::Crossover);
        t2.record_dispatch(MainAlgorithm::MaxMin, GeneticOp::Best);
        let mut r = t1.report();
        r.merge(&t2.report());
        assert_eq!(r.total(), 3);
        assert_eq!(r.algo_executed[MainAlgorithm::RandomMin.index()], 2);
    }

    #[test]
    fn metric_round_trips_through_json() {
        let m = Metric::new(
            "k2000s.best_energy",
            -4217.0,
            "energy",
            Direction::LowerIsBetter,
        )
        .deterministic()
        .gated(0.2);
        let back = Metric::from_json(&Json::parse(&m.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn metric_set_rejects_duplicates_and_preserves_order() {
        let mut s = MetricSet::new();
        s.push(Metric::new("a", 1.0, "s", Direction::LowerIsBetter));
        s.push(Metric::new("b", 2.0, "s", Direction::LowerIsBetter));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().next().unwrap().name, "a");
        let dup = Json::parse(
            "[{\"name\":\"a\",\"value\":1.0,\"unit\":\"s\",\"direction\":\"lower_is_better\"},\
              {\"name\":\"a\",\"value\":2.0,\"unit\":\"s\",\"direction\":\"lower_is_better\"}]",
        )
        .unwrap();
        assert!(MetricSet::from_json(&dup)
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn metric_set_push_panics_on_duplicate() {
        let mut s = MetricSet::new();
        s.push(Metric::new("a", 1.0, "s", Direction::LowerIsBetter));
        s.push(Metric::new("a", 2.0, "s", Direction::LowerIsBetter));
    }

    #[test]
    fn worse_by_is_direction_aware() {
        let hi = Metric::new("rate", 10.0, "jobs/s", Direction::HigherIsBetter);
        assert!(hi.worse_by(10.0, 8.0) > 0.0, "throughput drop regresses");
        assert!(hi.worse_by(10.0, 12.0) < 0.0);
        let lo = Metric::new("e", -100.0, "energy", Direction::LowerIsBetter);
        assert!(lo.worse_by(-100.0, -90.0) > 0.0, "higher energy regresses");
        assert!(lo.worse_by(-100.0, -110.0) < 0.0);
    }

    #[test]
    fn malformed_metric_json_is_rejected() {
        for bad in [
            "{}",
            "{\"name\":\"x\",\"value\":1.0,\"unit\":\"s\"}",
            "{\"name\":\"x\",\"value\":1.0,\"unit\":\"s\",\"direction\":\"sideways\"}",
            "{\"name\":\"x\",\"value\":\"NaN\",\"unit\":\"s\",\"direction\":\"lower_is_better\"}",
        ] {
            assert!(
                Metric::from_json(&Json::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = std::sync::Arc::new(FrequencyTracker::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.record_dispatch(MainAlgorithm::PositiveMin, GeneticOp::Mutation);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.report().total(), 4000);
    }
}
