//! Solution pools (paper §IV, Fig. 2).
//!
//! A pool stores up to `capacity` packets sorted by energy (best first).
//! Each row remembers the solution vector, its energy, and the (main
//! algorithm, genetic operation) pair that produced it — the raw material of
//! adaptive selection. A result packet is inserted iff it beats the worst
//! row; the worst row is evicted.

use crate::GeneticOp;
use dabs_model::Solution;
use dabs_rng::Rng64;
use dabs_search::MainAlgorithm;
use serde::{Deserialize, Serialize};

/// One pool row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolEntry {
    pub solution: Solution,
    /// `i64::MAX` encodes the paper's "+∞" placeholder energy of the
    /// initial random fill.
    pub energy: i64,
    pub algorithm: MainAlgorithm,
    pub operation: GeneticOp,
}

/// A bounded, energy-sorted solution pool.
#[derive(Debug, Clone)]
pub struct SolutionPool {
    entries: Vec<PoolEntry>,
    capacity: usize,
    /// Reject packets whose solution vector is already present (keeps the
    /// pool from collapsing into one relative; configurable because the
    /// paper does not specify dedup behaviour).
    dedup: bool,
    inserted: u64,
    rejected: u64,
}

impl SolutionPool {
    /// An empty pool with the given capacity.
    pub fn new(capacity: usize, dedup: bool) -> Self {
        assert!(capacity >= 1, "pool capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            dedup,
            inserted: 0,
            rejected: 0,
        }
    }

    /// The paper's initial fill: `capacity` random solution vectors with +∞
    /// energy and uniformly random algorithm/operation columns.
    pub fn fill_random<R: Rng64 + ?Sized>(
        &mut self,
        n: usize,
        algorithms: &[MainAlgorithm],
        operations: &[GeneticOp],
        rng: &mut R,
    ) {
        assert!(!algorithms.is_empty() && !operations.is_empty());
        self.entries.clear();
        for _ in 0..self.capacity {
            self.entries.push(PoolEntry {
                solution: Solution::random(n, rng),
                energy: i64::MAX,
                algorithm: algorithms[rng.next_index(algorithms.len())],
                operation: operations[rng.next_index(operations.len())],
            });
        }
    }

    /// Number of rows currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Row accessor (0 = best).
    pub fn entry(&self, i: usize) -> &PoolEntry {
        &self.entries[i]
    }

    /// Best row, if any.
    pub fn best(&self) -> Option<&PoolEntry> {
        self.entries.first()
    }

    /// Worst row, if any.
    pub fn worst(&self) -> Option<&PoolEntry> {
        self.entries.last()
    }

    /// Packets accepted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Packets rejected so far (worse than the worst row, or duplicates).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Insert a result row if it beats the worst row (or the pool is not
    /// full). Returns `true` on acceptance.
    pub fn insert(&mut self, entry: PoolEntry) -> bool {
        if self.dedup
            && self
                .entries
                .iter()
                .any(|e| e.energy == entry.energy && e.solution == entry.solution)
        {
            self.rejected += 1;
            return false;
        }
        if self.entries.len() >= self.capacity {
            match self.entries.last() {
                Some(worst) if entry.energy >= worst.energy => {
                    self.rejected += 1;
                    return false;
                }
                _ => {
                    self.entries.pop();
                }
            }
        }
        let pos = self.entries.partition_point(|e| e.energy <= entry.energy);
        self.entries.insert(pos, entry);
        self.inserted += 1;
        true
    }

    /// The paper's rank-biased parent pick: draw `r ∈ [0,1)` and take the
    /// row at index `⌊r³·m⌋` (0-based; the cube skews hard toward the best
    /// rows — the top row is picked with probability `m^{-1/3}`).
    pub fn select_biased<'a, R: Rng64 + ?Sized>(&'a self, rng: &mut R) -> &'a PoolEntry {
        assert!(!self.entries.is_empty(), "cannot select from empty pool");
        let r = rng.next_f64();
        let idx = ((r * r * r) * self.entries.len() as f64) as usize;
        &self.entries[idx.min(self.entries.len() - 1)]
    }

    /// A uniformly random row (used by the 95 % replay path of adaptive
    /// selection).
    pub fn select_uniform<'a, R: Rng64 + ?Sized>(&'a self, rng: &mut R) -> &'a PoolEntry {
        assert!(!self.entries.is_empty(), "cannot select from empty pool");
        &self.entries[rng.next_index(self.entries.len())]
    }

    /// Iterate rows best-first.
    pub fn iter(&self) -> impl Iterator<Item = &PoolEntry> {
        self.entries.iter()
    }

    /// Mean Hamming distance of all rows to the best row — the merge
    /// indicator used to decide restarts (paper §IV-B: "all solution pools
    /// may be merged … we can initialize all solution pools … and restart").
    pub fn diversity(&self) -> f64 {
        let Some(best) = self.best() else { return 0.0 };
        if self.entries.len() < 2 {
            return 0.0;
        }
        let total: usize = self.entries[1..]
            .iter()
            .map(|e| e.solution.hamming(&best.solution))
            .sum();
        total as f64 / (self.entries.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::Xorshift64Star;

    fn entry(e: i64, n: usize, seed: u64) -> PoolEntry {
        let mut rng = Xorshift64Star::new(seed);
        PoolEntry {
            solution: Solution::random(n, &mut rng),
            energy: e,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Mutation,
        }
    }

    #[test]
    fn insert_keeps_sorted_best_first() {
        let mut pool = SolutionPool::new(5, true);
        for (i, e) in [5i64, -3, 10, 0, -7].into_iter().enumerate() {
            assert!(pool.insert(entry(e, 16, i as u64)));
        }
        let energies: Vec<i64> = pool.iter().map(|e| e.energy).collect();
        assert_eq!(energies, vec![-7, -3, 0, 5, 10]);
        assert_eq!(pool.best().unwrap().energy, -7);
        assert_eq!(pool.worst().unwrap().energy, 10);
    }

    #[test]
    fn full_pool_rejects_worse_and_evicts_worst() {
        let mut pool = SolutionPool::new(3, true);
        for (i, e) in [1i64, 2, 3].into_iter().enumerate() {
            pool.insert(entry(e, 16, i as u64));
        }
        // worse than worst: rejected
        assert!(!pool.insert(entry(7, 16, 10)));
        assert_eq!(pool.rejected(), 1);
        // better: accepted, 3 evicted
        assert!(pool.insert(entry(0, 16, 11)));
        let energies: Vec<i64> = pool.iter().map(|e| e.energy).collect();
        assert_eq!(energies, vec![0, 1, 2]);
    }

    #[test]
    fn equal_to_worst_is_rejected_when_full() {
        let mut pool = SolutionPool::new(2, true);
        pool.insert(entry(1, 16, 0));
        pool.insert(entry(2, 16, 1));
        assert!(!pool.insert(entry(2, 16, 2)), "ties with worst don't enter");
    }

    #[test]
    fn dedup_rejects_identical_vector() {
        let mut pool = SolutionPool::new(5, true);
        let e = entry(-4, 16, 3);
        assert!(pool.insert(e.clone()));
        assert!(!pool.insert(e.clone()), "exact duplicate rejected");
        // same vector, different energy field is allowed (different row)
        let mut e2 = e;
        e2.energy = -5;
        assert!(pool.insert(e2));
    }

    #[test]
    fn dedup_off_allows_duplicates() {
        let mut pool = SolutionPool::new(5, false);
        let e = entry(-4, 16, 4);
        assert!(pool.insert(e.clone()));
        assert!(pool.insert(e));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn fill_random_populates_capacity_with_infinite_energy() {
        let mut pool = SolutionPool::new(10, true);
        let mut rng = Xorshift64Star::new(5);
        pool.fill_random(64, &MainAlgorithm::ALL, &GeneticOp::DABS, &mut rng);
        assert_eq!(pool.len(), 10);
        assert!(pool.iter().all(|e| e.energy == i64::MAX));
        // any real result now displaces a random row
        let mut p2 = pool.clone();
        assert!(p2.insert(entry(100, 64, 6)));
        assert_eq!(p2.best().unwrap().energy, 100);
    }

    #[test]
    fn biased_selection_prefers_top_rows() {
        let mut pool = SolutionPool::new(100, true);
        for i in 0..100 {
            pool.insert(entry(i as i64, 16, i as u64));
        }
        let mut rng = Xorshift64Star::new(7);
        let mut top_decile = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let e = pool.select_biased(&mut rng);
            if e.energy < 10 {
                top_decile += 1;
            }
        }
        // P(idx < 10) = P(r³ < 0.1) = 0.1^{1/3} ≈ 0.464
        let frac = top_decile as f64 / trials as f64;
        assert!(
            (0.42..0.51).contains(&frac),
            "top-decile pick rate {frac}, expected ≈ 0.464"
        );
    }

    #[test]
    fn uniform_selection_is_flat() {
        let mut pool = SolutionPool::new(10, true);
        for i in 0..10 {
            pool.insert(entry(i as i64, 16, i as u64));
        }
        let mut rng = Xorshift64Star::new(8);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[pool.select_uniform(&mut rng).energy as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "uniform counts skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn diversity_reflects_spread() {
        let mut pool = SolutionPool::new(4, false);
        let base = Solution::zeros(64);
        pool.insert(PoolEntry {
            solution: base.clone(),
            energy: 0,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Best,
        });
        // identical copies → diversity 0
        let mut clone_pool = pool.clone();
        clone_pool.insert(PoolEntry {
            solution: base.clone(),
            energy: 1,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Best,
        });
        assert_eq!(clone_pool.diversity(), 0.0);
        // a far row raises it
        pool.insert(PoolEntry {
            solution: Solution::ones(64),
            energy: 1,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Best,
        });
        assert_eq!(pool.diversity(), 64.0);
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn selecting_from_empty_pool_panics() {
        let pool = SolutionPool::new(3, true);
        let mut rng = Xorshift64Star::new(9);
        pool.select_biased(&mut rng);
    }
}
