//! Umbrella crate: re-exports the full DABS public API.
pub use dabs_baselines as baselines;
pub use dabs_core as core;
pub use dabs_gpu_sim as gpu_sim;
pub use dabs_model as model;
pub use dabs_obs as obs;
pub use dabs_problems as problems;
pub use dabs_rng as rng;
pub use dabs_search as search;
pub use dabs_server as server;
