//! Property-based tests on the model layer: energies, deltas, conversions,
//! solution-vector algebra, and cross-backend kernel parity.

use dabs::model::{
    IncrementalState, IsingModel, KernelChoice, KernelKind, QuboBuilder, QuboModel, Solution,
};
use proptest::prelude::*;

/// The density grid the kernel-parity properties sweep: sparse enough that
/// CSR is the auto pick, the auto crossover region, and near-complete.
const PARITY_DENSITIES: [f64; 3] = [0.05, 0.5, 0.95];

/// Deterministic random model at a target density with a forced backend.
fn density_model(n: usize, density: f64, seed: u64, kernel: KernelChoice) -> QuboModel {
    use dabs::rng::Rng64;
    let mut rng = dabs::rng::Xorshift64Star::new(seed);
    let mut b = QuboBuilder::new(n);
    b.kernel(kernel);
    for i in 0..n {
        b.add_linear(i, rng.next_range_i64(-20, 20));
        for j in (i + 1)..n {
            if rng.next_bool(density) {
                b.add_quadratic(i, j, rng.next_range_i64(-20, 20));
            }
        }
    }
    b.build().unwrap()
}

/// Strategy: a random QUBO with up to `n` variables and bounded weights.
fn arb_qubo(max_n: usize) -> impl Strategy<Value = QuboModel> {
    (2..=max_n).prop_flat_map(|n| {
        let diag = proptest::collection::vec(-20i64..=20, n);
        let edges = proptest::collection::vec(
            ((0..n), (0..n), -20i64..=20).prop_filter("no self-loops", |(i, j, _)| i != j),
            0..(n * 2),
        );
        (Just(n), diag, edges).prop_map(|(n, diag, edges)| {
            let mut b = QuboBuilder::new(n);
            for (i, d) in diag.into_iter().enumerate() {
                b.add_linear(i, d);
            }
            for (i, j, w) in edges {
                b.add_quadratic(i, j, w);
            }
            b.build().unwrap()
        })
    })
}

/// Strategy: a bit vector of length n as bools.
fn arb_bits(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_equals_energy_difference(q in arb_qubo(24), seed in any::<u64>()) {
        let n = q.n();
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        let x = Solution::random(n, &mut rng);
        let e = q.energy(&x);
        for i in 0..n {
            let mut y = x.clone();
            y.flip(i);
            prop_assert_eq!(q.delta(&x, i), q.energy(&y) - e);
        }
    }

    #[test]
    fn energy_of_zero_vector_is_zero(q in arb_qubo(24)) {
        prop_assert_eq!(q.energy(&Solution::zeros(q.n())), 0);
    }

    #[test]
    fn ising_qubo_roundtrip_preserves_energy(q in arb_qubo(20), seed in any::<u64>()) {
        let (ising, c) = q.to_ising();
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        for _ in 0..8 {
            let x = Solution::random(q.n(), &mut rng);
            // H(S) = 4·E(X) − C
            prop_assert_eq!(ising.hamiltonian(&x), 4 * q.energy(&x) - c);
        }
    }

    #[test]
    fn ising_to_qubo_offset_identity(
        n in 3usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        use dabs::rng::Rng64;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(0.4) {
                    edges.push((i, j, rng.next_range_i64(-5, 5)));
                }
            }
        }
        let biases: Vec<i64> = (0..n).map(|_| rng.next_range_i64(-5, 5)).collect();
        let ising = IsingModel::new(n, &edges, biases).unwrap();
        let (qubo, offset) = ising.to_qubo();
        for _ in 0..8 {
            let x = Solution::random(n, &mut rng);
            prop_assert_eq!(ising.hamiltonian(&x), qubo.energy(&x) + offset);
        }
    }

    #[test]
    fn hamming_is_a_metric(a in arb_bits(64), b in arb_bits(64), c in arb_bits(64)) {
        let (sa, sb, sc) = (
            Solution::from_bits(&a),
            Solution::from_bits(&b),
            Solution::from_bits(&c),
        );
        prop_assert_eq!(sa.hamming(&sa), 0);
        prop_assert_eq!(sa.hamming(&sb), sb.hamming(&sa));
        prop_assert!(sa.hamming(&sc) <= sa.hamming(&sb) + sb.hamming(&sc));
    }

    #[test]
    fn flip_is_involutive(bits in arb_bits(100), idx in 0usize..100) {
        let mut s = Solution::from_bits(&bits);
        let orig = s.clone();
        s.flip(idx);
        prop_assert_ne!(&s, &orig);
        s.flip(idx);
        prop_assert_eq!(s, orig);
    }

    #[test]
    fn crossover_child_within_parent_hull(a in arb_bits(80), b in arb_bits(80), seed in any::<u64>()) {
        let (sa, sb) = (Solution::from_bits(&a), Solution::from_bits(&b));
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        let child = sa.crossover(&sb, &mut rng);
        for i in 0..80 {
            prop_assert!(child.get(i) == sa.get(i) || child.get(i) == sb.get(i));
        }
        // child is at most as far from each parent as the parents are apart
        prop_assert!(child.hamming(&sa) + child.hamming(&sb) == sa.hamming(&sb));
    }

    #[test]
    fn count_ones_matches_iter(bits in arb_bits(130)) {
        let s = Solution::from_bits(&bits);
        prop_assert_eq!(s.count_ones(), s.iter_ones().count());
        prop_assert_eq!(s.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn incremental_state_matches_recompute_on_both_backends(
        n in 8usize..48,
        seed in any::<u64>(),
        steps in 1usize..100,
    ) {
        // For random models at each parity density, the incremental
        // energy/deltas after a random flip sequence must equal a
        // from-scratch `model.energy()` / `model.delta()` recompute —
        // on BOTH kernel backends, flip for flip.
        use dabs::rng::Rng64;
        for &density in &PARITY_DENSITIES {
            let q = density_model(n, density, seed, KernelChoice::Dense);
            let mut rng = dabs::rng::Xorshift64Star::new(seed ^ 0x0D15_EA5E);
            let start = Solution::random(n, &mut rng);
            let mut csr = IncrementalState::from_solution(&q, start.clone());
            let mut dense = IncrementalState::from_solution_dense(&q, start);
            for _ in 0..steps {
                let bit = rng.next_index(n);
                let ec = csr.flip(bit);
                let ed = dense.flip(bit);
                prop_assert_eq!(ec, ed, "density {}", density);
            }
            let x = csr.solution().clone();
            prop_assert_eq!(dense.solution(), &x);
            // from-scratch ground truth
            prop_assert_eq!(csr.energy(), q.energy(&x), "density {}", density);
            for i in 0..n {
                let truth = q.delta(&x, i);
                prop_assert_eq!(csr.delta(i), truth, "csr Δ_{} density {}", i, density);
                prop_assert_eq!(dense.delta(i), truth, "dense Δ_{} density {}", i, density);
            }
        }
    }

    #[test]
    fn segment_aggregates_match_fresh_reduction_after_flip_walks(
        seed in any::<u64>(),
        steps in 1usize..80,
    ) {
        // The Δ-segment aggregate layer (min/argmin/max per 64-gain
        // segment, incrementally maintained by tighten-or-mark updates)
        // must equal a fresh full-array reduction after ANY flip sequence,
        // on BOTH kernel backends, across the parity densities and the
        // word-boundary sizes that stress partial tail segments.
        // `assert_consistent` refreshes the aggregates and compares every
        // segment against `reduce_min_argmin_max` ground truth.
        use dabs::rng::Rng64;
        for &n in &[63usize, 64, 65, 128, 129] {
            for &density in &PARITY_DENSITIES {
                let q = density_model(n, density, seed ^ n as u64, KernelChoice::Dense);
                let mut rng = dabs::rng::Xorshift64Star::new(seed ^ 0xA66E);
                let start = Solution::random(n, &mut rng);
                let mut csr = IncrementalState::from_solution(&q, start.clone());
                let mut dense = IncrementalState::from_solution_dense(&q, start);
                for _ in 0..steps {
                    let bit = rng.next_index(n);
                    csr.flip(bit);
                    dense.flip(bit);
                }
                csr.assert_consistent();
                dense.assert_consistent();
                // the aggregate-backed argmin/min/max equal a naive scan
                let naive_min = *csr.deltas().iter().min().unwrap();
                let naive_arg = csr.deltas().iter().position(|&d| d == naive_min).unwrap();
                let naive_max = *csr.deltas().iter().max().unwrap();
                prop_assert_eq!(csr.min_max_argmin(), (naive_arg, naive_min, naive_max));
                prop_assert_eq!(dense.min_max_argmin(), (naive_arg, naive_min, naive_max));
                let naive_posmin = csr
                    .deltas()
                    .iter()
                    .copied()
                    .filter(|&d| d > 0)
                    .min()
                    .unwrap_or(i64::MAX);
                prop_assert_eq!(csr.positive_min_delta(), naive_posmin);
                prop_assert_eq!(dense.positive_min_delta(), naive_posmin);
            }
        }
    }

    #[test]
    fn select_le_is_stream_identical_to_the_naive_reservoir(
        n in 8usize..140,
        seed in any::<u64>(),
        steps in 0usize..60,
        bound_off in -4i64..10,
    ) {
        // `select_le` must pick the SAME bit as the naive full-scan
        // reservoir AND consume the SAME number of RNG draws (skipped
        // segments hold no candidates, so no draw is elided) — the
        // property that keeps whole trajectories bit-identical.
        use dabs::rng::Rng64;
        let q = density_model(n, 0.3, seed, KernelChoice::Csr);
        let mut rng = dabs::rng::Xorshift64Star::new(seed ^ 0x5E1E_C700);
        let mut st = IncrementalState::from_solution(&q, Solution::random(n, &mut rng));
        for _ in 0..steps {
            let bit = rng.next_index(n);
            st.flip(bit);
        }
        let (_, min_d) = st.min_delta();
        let bound = min_d.saturating_add(bound_off);
        let blocked = |k: usize| !k.is_multiple_of(5); // arbitrary tabu-ish filter
        // i64 bound
        let mut rng_a = dabs::rng::Xorshift64Star::new(seed ^ 1);
        let mut rng_b = dabs::rng::Xorshift64Star::new(seed ^ 1);
        let fast = st.select_le(bound, &mut rng_a, blocked);
        let mut naive = None;
        let mut count = 0u64;
        for (k, &d) in st.deltas().iter().enumerate() {
            if d <= bound && blocked(k) {
                count += 1;
                if rng_b.next_below(count) == 0 {
                    naive = Some(k);
                }
            }
        }
        prop_assert_eq!(fast, naive);
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "i64 stream diverged");
        // f64 bound (MaxMin's threshold shape)
        let fbound = bound as f64 + 0.25;
        let mut rng_a = dabs::rng::Xorshift64Star::new(seed ^ 2);
        let mut rng_b = dabs::rng::Xorshift64Star::new(seed ^ 2);
        let fast = st.select_le_f64(fbound, &mut rng_a, blocked);
        let mut naive = None;
        let mut count = 0u64;
        for (k, &d) in st.deltas().iter().enumerate() {
            if (d as f64) <= fbound && blocked(k) {
                count += 1;
                if rng_b.next_below(count) == 0 {
                    naive = Some(k);
                }
            }
        }
        prop_assert_eq!(fast, naive);
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "f64 stream diverged");
    }

    #[test]
    fn window_argmin_matches_the_element_wise_window_scan(
        n in 8usize..150,
        seed in any::<u64>(),
        steps in 0usize..50,
        pos_raw in 0usize..1000,
        width_raw in 0usize..1000,
    ) {
        // CyclicMin's cyclic-window argmin, answered from segment
        // aggregates with whole-segment skipping, must reproduce the
        // element-wise traversal exactly — both the filtered and the
        // unrestricted argmin, including wrap-around windows.
        use dabs::rng::Rng64;
        let q = density_model(n, 0.4, seed, KernelChoice::Csr);
        let mut rng = dabs::rng::Xorshift64Star::new(seed ^ 0xC1C);
        let mut st = IncrementalState::from_solution(&q, Solution::random(n, &mut rng));
        for _ in 0..steps {
            let bit = rng.next_index(n);
            st.flip(bit);
        }
        let pos = pos_raw % n;
        let width = (width_raw % n) + 1;
        let blocked = |k: usize| !k.is_multiple_of(7);
        let (arg, arg_any) = st.window_argmin(pos, width, blocked);
        let mut n_arg = usize::MAX;
        let mut n_min = i64::MAX;
        let mut n_arg_any = usize::MAX;
        let mut n_min_any = i64::MAX;
        for off in 0..width {
            let k = (pos + off) % n;
            let d = st.delta(k);
            if d < n_min_any {
                n_min_any = d;
                n_arg_any = k;
            }
            if d < n_min && blocked(k) {
                n_min = d;
                n_arg = k;
            }
        }
        prop_assert_eq!(arg, n_arg);
        prop_assert_eq!(arg_any, n_arg_any);
    }

    #[test]
    fn auto_kernel_selection_follows_the_density_policy(
        n in 8usize..40,
        seed in any::<u64>(),
    ) {
        for &density in &PARITY_DENSITIES {
            let q = density_model(n, density, seed, KernelChoice::Auto);
            let expect = if q.density() >= dabs::model::DENSE_DENSITY_THRESHOLD {
                KernelKind::Dense
            } else {
                KernelKind::Csr
            };
            prop_assert_eq!(q.kernel_kind(), expect);
            // dense storage exists exactly when the dense backend is active
            prop_assert_eq!(q.dense_strips().is_some(), expect == KernelKind::Dense);
        }
    }

    #[test]
    fn lower_bound_is_sound(q in arb_qubo(16), seed in any::<u64>()) {
        let lb = q.lower_bound();
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        for _ in 0..16 {
            let x = Solution::random(q.n(), &mut rng);
            prop_assert!(q.energy(&x) >= lb);
        }
    }
}
