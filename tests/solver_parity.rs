//! Cross-solver parity: every solver in the repo agrees on small proven
//! optima (they differ only in how fast they get there).

use dabs::baselines::bnb::{BnbConfig, BranchAndBound};
use dabs::baselines::exact::exhaustive;
use dabs::baselines::hybrid::{HybridConfig, HybridSolver};
use dabs::baselines::sa::{SaConfig, SimulatedAnnealing};
use dabs::baselines::sb::{SbConfig, SimulatedBifurcation};
use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::model::{QuboBuilder, QuboModel};
use dabs::rng::{Rng64, Xorshift64Star};
use std::sync::Arc;
use std::time::Duration;

fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
    let mut rng = Xorshift64Star::new(seed);
    let mut b = QuboBuilder::new(n);
    for i in 0..n {
        b.add_linear(i, rng.next_range_i64(-9, 9));
        for j in (i + 1)..n {
            if rng.next_bool(density) {
                b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn all_solvers_agree_on_a_16_bit_instance() {
    let q = random_model(16, 0.4, 41);
    let truth = exhaustive(&q).energy;
    let model = Arc::new(q.clone());

    // DABS
    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.seed = 42;
    let dabs = DabsSolver::new(cfg).unwrap().run(
        &model,
        Termination::target(truth).with_time(Duration::from_secs(30)),
    );
    assert_eq!(dabs.energy, truth, "DABS");

    // branch & bound proves it
    let bnb = BranchAndBound::new(BnbConfig::default()).solve(&q);
    assert!(bnb.proven_optimal);
    assert_eq!(bnb.energy, truth, "BnB");

    // SA reaches it
    let sa = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 500, 43)).solve(&q);
    assert_eq!(sa.energy, truth, "SA");

    // hybrid reaches it
    let hy = HybridSolver::new(HybridConfig {
        time_limit: Duration::from_millis(500),
        seed: 44,
        ..HybridConfig::default()
    })
    .solve(&q);
    assert_eq!(hy.energy, truth, "hybrid");

    // dSB gets within a small gap (analog dynamics, no guarantee)
    let (ising, c) = q.to_ising();
    let sb = SimulatedBifurcation::new(SbConfig {
        steps: 4000,
        seed: 45,
        ..SbConfig::default()
    })
    .solve(&ising);
    let sb_energy = (sb.energy + c) / 4;
    let gap = (sb_energy - truth).abs() as f64 / truth.abs().max(1) as f64;
    assert!(gap <= 0.15, "dSB energy {sb_energy} vs optimum {truth}");
}

#[test]
fn energies_are_internally_consistent_across_solvers() {
    // whatever each solver returns, its reported energy must match the
    // model evaluation of its reported solution
    let q = random_model(24, 0.3, 46);
    let model = Arc::new(q.clone());

    let mut cfg = DabsConfig::dabs(2, 1);
    cfg.seed = 47;
    let dabs = DabsSolver::new(cfg)
        .unwrap()
        .run(&model, Termination::time(Duration::from_millis(400)));
    assert_eq!(q.energy(&dabs.best), dabs.energy);

    let sa = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 50, 48)).solve(&q);
    assert_eq!(q.energy(&sa.best), sa.energy);

    let bnb = BranchAndBound::new(BnbConfig {
        time_limit: Duration::from_millis(200),
        heuristic_restarts: 4,
        seed: 49,
    })
    .solve(&q);
    assert_eq!(q.energy(&bnb.best), bnb.energy);

    let hy = HybridSolver::new(HybridConfig {
        time_limit: Duration::from_millis(150),
        seed: 50,
        ..HybridConfig::default()
    })
    .solve(&q);
    assert_eq!(q.energy(&hy.best), hy.energy);
}
