//! Cross-solver parity: every solver in the repo agrees on small proven
//! optima (they differ only in how fast they get there) — and the two
//! energy-kernel backends are bit-for-bit interchangeable underneath all of
//! them.

use dabs::baselines::bnb::{BnbConfig, BranchAndBound};
use dabs::baselines::exact::exhaustive;
use dabs::baselines::hybrid::{HybridConfig, HybridSolver};
use dabs::baselines::sa::{SaConfig, SimulatedAnnealing};
use dabs::baselines::sb::{SbConfig, SimulatedBifurcation};
use dabs::core::{DabsConfig, DabsSolver, Incumbent, Termination};
use dabs::model::{KernelChoice, KernelKind, QuboBuilder, QuboModel};
use dabs::rng::{Rng64, Xorshift64Star};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn random_model_with_kernel(n: usize, density: f64, seed: u64, kernel: KernelChoice) -> QuboModel {
    let mut rng = Xorshift64Star::new(seed);
    let mut b = QuboBuilder::new(n);
    b.kernel(kernel);
    for i in 0..n {
        b.add_linear(i, rng.next_range_i64(-9, 9));
        for j in (i + 1)..n {
            if rng.next_bool(density) {
                b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
            }
        }
    }
    b.build().unwrap()
}

fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
    random_model_with_kernel(n, density, seed, KernelChoice::Auto)
}

#[test]
fn all_solvers_agree_on_a_16_bit_instance() {
    let q = random_model(16, 0.4, 41);
    let truth = exhaustive(&q).energy;
    let model = Arc::new(q.clone());

    // DABS
    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.seed = 42;
    let dabs = DabsSolver::new(cfg).unwrap().run(
        &model,
        Termination::target(truth).with_time(Duration::from_secs(30)),
    );
    assert_eq!(dabs.energy, truth, "DABS");

    // branch & bound proves it
    let bnb = BranchAndBound::new(BnbConfig::default()).solve(&q);
    assert!(bnb.proven_optimal);
    assert_eq!(bnb.energy, truth, "BnB");

    // SA reaches it
    let sa = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 500, 43)).solve(&q);
    assert_eq!(sa.energy, truth, "SA");

    // hybrid reaches it
    let hy = HybridSolver::new(HybridConfig {
        time_limit: Duration::from_millis(500),
        seed: 44,
        ..HybridConfig::default()
    })
    .solve(&q);
    assert_eq!(hy.energy, truth, "hybrid");

    // dSB gets within a small gap (analog dynamics, no guarantee)
    let (ising, c) = q.to_ising();
    let sb = SimulatedBifurcation::new(SbConfig {
        steps: 4000,
        seed: 45,
        ..SbConfig::default()
    })
    .solve(&ising);
    let sb_energy = (sb.energy + c) / 4;
    let gap = (sb_energy - truth).abs() as f64 / truth.abs().max(1) as f64;
    assert!(gap <= 0.15, "dSB energy {sb_energy} vs optimum {truth}");
}

/// Run `run_sequential` with an observer, collecting the full incumbent
/// energy trajectory alongside the final result.
fn traced_sequential(
    model: &QuboModel,
    cfg: DabsConfig,
    batches: u64,
) -> (dabs::core::SolveResult, Vec<i64>) {
    let trace: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&trace);
    let result = DabsSolver::new(cfg).unwrap().run_sequential_with_observer(
        model,
        Termination::batches(batches),
        Arc::new(move |inc: &Incumbent| sink.lock().unwrap().push(inc.energy)),
    );
    let trace = trace.lock().unwrap().clone();
    (result, trace)
}

#[test]
fn csr_and_dense_kernels_are_bit_identical_under_run_sequential() {
    // The tentpole contract: the kernel backend changes the memory layout
    // of the flip loop and nothing else. Same instance + same seed must
    // give the same best solution bit for bit, the same flip/batch
    // accounting, and the same energy trajectory, at every density.
    for (n, density, seed) in [(32, 0.1, 61), (48, 0.5, 62), (40, 0.9, 63)] {
        let csr_model = random_model_with_kernel(n, density, seed, KernelChoice::Csr);
        let dense_model = random_model_with_kernel(n, density, seed, KernelChoice::Dense);
        assert_eq!(csr_model, dense_model, "same weights regardless of kernel");
        assert_eq!(csr_model.kernel_kind(), KernelKind::Csr);
        assert_eq!(dense_model.kernel_kind(), KernelKind::Dense);

        let cfg = || {
            let mut c = DabsConfig::dabs(2, 1);
            c.seed = 1000 + seed;
            c
        };
        let (ra, ta) = traced_sequential(&csr_model, cfg(), 150);
        let (rb, tb) = traced_sequential(&dense_model, cfg(), 150);
        assert_eq!(ra.best, rb.best, "n={n} density={density}");
        assert_eq!(ra.energy, rb.energy, "n={n} density={density}");
        assert_eq!(ra.batches, rb.batches, "n={n} density={density}");
        assert_eq!(ra.flips, rb.flips, "n={n} density={density}");
        assert_eq!(ra.frequencies, rb.frequencies, "n={n} density={density}");
        assert_eq!(ra.first_finder, rb.first_finder, "n={n} density={density}");
        assert_eq!(ta, tb, "incumbent trajectory n={n} density={density}");
        assert!(!ta.is_empty(), "trajectory must contain the first best");
    }
}

#[test]
fn auto_kernel_matches_forced_kernels_exactly() {
    // Whatever `auto` picks must be one of the two forced behaviours — no
    // third code path. A dense instance auto-selects the dense backend and
    // reproduces its trajectory exactly.
    let auto_model = random_model_with_kernel(36, 0.8, 71, KernelChoice::Auto);
    assert_eq!(auto_model.kernel_kind(), KernelKind::Dense);
    let forced = random_model_with_kernel(36, 0.8, 71, KernelChoice::Dense);
    let mut cfg = DabsConfig::dabs(2, 1);
    cfg.seed = 9;
    let (ra, ta) = traced_sequential(&auto_model, cfg.clone(), 120);
    let (rb, tb) = traced_sequential(&forced, cfg, 120);
    assert_eq!(ra.best, rb.best);
    assert_eq!(ra.energy, rb.energy);
    assert_eq!(ta, tb);
}

#[test]
fn threaded_run_on_dense_kernel_reaches_the_proven_optimum() {
    // The threaded path dispatches per block worker; make sure a dense
    // model solves correctly end to end there too.
    let q = random_model_with_kernel(16, 0.6, 72, KernelChoice::Dense);
    let truth = exhaustive(&q).energy;
    let model = Arc::new(q.clone());
    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.seed = 73;
    let r = DabsSolver::new(cfg).unwrap().run(
        &model,
        Termination::target(truth).with_time(Duration::from_secs(30)),
    );
    assert_eq!(r.energy, truth);
    assert_eq!(q.energy(&r.best), truth);
}

#[test]
fn energies_are_internally_consistent_across_solvers() {
    // whatever each solver returns, its reported energy must match the
    // model evaluation of its reported solution
    let q = random_model(24, 0.3, 46);
    let model = Arc::new(q.clone());

    let mut cfg = DabsConfig::dabs(2, 1);
    cfg.seed = 47;
    let dabs = DabsSolver::new(cfg)
        .unwrap()
        .run(&model, Termination::time(Duration::from_millis(400)));
    assert_eq!(q.energy(&dabs.best), dabs.energy);

    let sa = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 50, 48)).solve(&q);
    assert_eq!(q.energy(&sa.best), sa.energy);

    let bnb = BranchAndBound::new(BnbConfig {
        time_limit: Duration::from_millis(200),
        heuristic_restarts: 4,
        seed: 49,
    })
    .solve(&q);
    assert_eq!(q.energy(&bnb.best), bnb.energy);

    let hy = HybridSolver::new(HybridConfig {
        time_limit: Duration::from_millis(150),
        seed: 50,
        ..HybridConfig::default()
    })
    .solve(&q);
    assert_eq!(q.energy(&hy.best), hy.energy);
}

// ---------------------------------------------------------------------------
// Segment-aggregate selection vs the pre-segment full-scan reference
// ---------------------------------------------------------------------------

/// Run one strategy twice — once through the segment-aggregate selection
/// primitives, once through the preserved full-scan path in
/// `dabs_search::reference` — from identical states under identical RNG
/// streams, and demand bit-identical outcomes: final vector, energy, flip
/// count, best-tracker contents, and RNG stream position.
fn assert_strategy_parity(n: usize, density: f64, seed: u64, flips: u64, which: &str) {
    use dabs::model::{BestTracker, IncrementalState, Solution};
    use dabs::search::{reference, TabuList};

    let q = random_model(n, density, seed);
    let mut start_rng = Xorshift64Star::new(seed ^ 0x57A7);
    let start = Solution::random(n, &mut start_rng);

    let mut st_seg = IncrementalState::from_solution(&q, start.clone());
    let mut st_scan = IncrementalState::from_solution(&q, start);
    let mut best_seg = BestTracker::unbounded(n);
    let mut best_scan = BestTracker::unbounded(n);
    let mut tabu_seg = TabuList::new(n, 8);
    let mut tabu_scan = TabuList::new(n, 8);
    let mut rng_seg = Xorshift64Star::new(seed ^ 0xF11);
    let mut rng_scan = Xorshift64Star::new(seed ^ 0xF11);

    match which {
        "maxmin" => {
            dabs::search::max_min(
                &mut st_seg,
                &mut best_seg,
                &mut tabu_seg,
                &mut rng_seg,
                flips,
            );
            reference::max_min_scan(
                &mut st_scan,
                &mut best_scan,
                &mut tabu_scan,
                &mut rng_scan,
                flips,
            );
        }
        "positivemin" => {
            dabs::search::positive_min(
                &mut st_seg,
                &mut best_seg,
                &mut tabu_seg,
                &mut rng_seg,
                flips,
            );
            reference::positive_min_scan(
                &mut st_scan,
                &mut best_scan,
                &mut tabu_scan,
                &mut rng_scan,
                flips,
            );
        }
        "cyclicmin" => {
            dabs::search::cyclic_min(&mut st_seg, &mut best_seg, &mut tabu_seg, flips);
            reference::cyclic_min_scan(&mut st_scan, &mut best_scan, &mut tabu_scan, flips);
        }
        "greedy" => {
            dabs::search::greedy(&mut st_seg, &mut best_seg, &mut tabu_seg, flips);
            reference::greedy_scan(&mut st_scan, &mut best_scan, &mut tabu_scan, flips);
        }
        other => panic!("unknown strategy {other}"),
    }

    let label = format!("{which} n={n} density={density} seed={seed}");
    assert_eq!(st_seg.solution(), st_scan.solution(), "{label}: vector");
    assert_eq!(st_seg.energy(), st_scan.energy(), "{label}: energy");
    assert_eq!(st_seg.flips(), st_scan.flips(), "{label}: flip accounting");
    assert_eq!(
        best_seg.energy(),
        best_scan.energy(),
        "{label}: best energy"
    );
    assert_eq!(
        best_seg.solution(),
        best_scan.solution(),
        "{label}: best vector"
    );
    assert_eq!(
        rng_seg.next_u64(),
        rng_scan.next_u64(),
        "{label}: RNG stream position"
    );
    st_seg.assert_consistent();
}

#[test]
fn segment_strategies_are_bit_identical_to_the_scan_reference() {
    // Word-boundary sizes stress partial tail segments; the density spread
    // covers tie-heavy and spread-out Δ distributions.
    for &(n, density) in &[
        (63usize, 0.1),
        (64, 0.5),
        (65, 0.9),
        (129, 0.05),
        (200, 0.3),
    ] {
        for which in ["maxmin", "positivemin", "cyclicmin", "greedy"] {
            assert_strategy_parity(n, density, 1_000 + n as u64, 1_500, which);
        }
    }
}

#[test]
fn segment_batch_composite_is_bit_identical_to_the_scan_reference() {
    // The §III-B shape: alternating greedy descents and PositiveMin legs,
    // as BatchSearch runs between targets — the production flip loop.
    use dabs::model::{BestTracker, IncrementalState, Solution};
    use dabs::search::{reference, TabuList};

    let n = 150;
    let q = random_model(n, 0.2, 77);
    let mut start_rng = Xorshift64Star::new(78);
    let start = Solution::random(n, &mut start_rng);
    let mut st_seg = IncrementalState::from_solution(&q, start.clone());
    let mut st_scan = IncrementalState::from_solution(&q, start);
    let mut best_seg = BestTracker::unbounded(n);
    let mut best_scan = BestTracker::unbounded(n);
    let mut tabu_seg = TabuList::new(n, 8);
    let mut tabu_scan = TabuList::new(n, 8);
    let mut rng_seg = Xorshift64Star::new(79);
    let mut rng_scan = Xorshift64Star::new(79);
    let leg = (n as u64).div_ceil(10);
    for _ in 0..25 {
        dabs::search::greedy(&mut st_seg, &mut best_seg, &mut tabu_seg, u64::MAX);
        reference::greedy_scan(&mut st_scan, &mut best_scan, &mut tabu_scan, u64::MAX);
        dabs::search::positive_min(&mut st_seg, &mut best_seg, &mut tabu_seg, &mut rng_seg, leg);
        reference::positive_min_scan(
            &mut st_scan,
            &mut best_scan,
            &mut tabu_scan,
            &mut rng_scan,
            leg,
        );
        assert_eq!(st_seg.solution(), st_scan.solution());
        assert_eq!(st_seg.flips(), st_scan.flips());
        assert_eq!(rng_seg.next_u64(), rng_scan.next_u64());
    }
    assert_eq!(best_seg.energy(), best_scan.energy());
    assert_eq!(best_seg.solution(), best_scan.solution());
    st_seg.assert_consistent();
}
