//! End-to-end tests of the solve-job server over a real TCP socket.
//!
//! These drive the full stack — wire protocol, admission queue, worker
//! pool, job lifecycle — exactly as an external client would, and pin the
//! runtime's contract:
//!
//! * concurrent clients' job results are byte-identical to offline
//!   `run_sequential` runs of the same specs,
//! * `cancel` is honored mid-run within [`cancel_latency_bound`] (250 ms
//!   locally; a load-tolerant bound on shared CI runners),
//! * a job whose deadline has already passed is rejected at admission,
//! * `subscribe` streams monotonically non-increasing incumbent energies.

use dabs::server::{
    now_unix_ms, timeline_to_chrome, Client, ExecMode, JobSpec, ProblemSpec, Request, Response,
    Server, ServerConfig, TimelineKind, PROTOCOL_VERSION,
};
use std::time::{Duration, Instant};

/// How quickly a mid-run `cancel` must produce the terminal result.
///
/// The 250 ms figure is the product contract and what a quiet developer
/// machine comfortably meets. Shared CI runners get descheduled for longer
/// than that under noisy neighbours, which used to flake this suite — so
/// when `CI` is set (as GitHub Actions does) the bound is load-tolerant.
/// `DABS_CANCEL_LATENCY_MS` overrides both, for pinning either regime
/// explicitly.
fn cancel_latency_bound() -> Duration {
    if let Some(ms) = std::env::var("DABS_CANCEL_LATENCY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        return Duration::from_millis(ms);
    }
    if std::env::var_os("CI").is_some() {
        Duration::from_millis(1500)
    } else {
        Duration::from_millis(250)
    }
}

fn start_server(workers: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_capacity: 128,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral server")
}

fn job(n: usize, seed: u64, batches: u64) -> JobSpec {
    JobSpec {
        problem: ProblemSpec::random(n, seed),
        devices: 2,
        blocks: 1,
        seed,
        mode: ExecMode::Sequential,
        max_batches: Some(batches),
        ..JobSpec::default()
    }
}

#[test]
fn concurrent_clients_get_results_matching_offline_reference() {
    const CLIENTS: usize = 4;
    const JOBS_PER_CLIENT: usize = 5; // ≥ 20 jobs total
    let server = start_server(3);
    let addr = server.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut outcomes = Vec::new();
                for j in 0..JOBS_PER_CLIENT {
                    let seed = 100 + (c * JOBS_PER_CLIENT + j) as u64;
                    let spec = job(20 + 2 * j, seed, 120);
                    let id = client.submit(&spec).expect("submit");
                    let outcome = client.wait_result(id).expect("result");
                    outcomes.push((spec, outcome));
                }
                outcomes
            })
        })
        .collect();

    let mut total = 0;
    for h in handles {
        for (spec, outcome) in h.join().expect("client thread") {
            total += 1;
            assert_eq!(outcome.phase, "done", "{:?}", outcome.error);
            let result = outcome.result.expect("done jobs carry a result");
            // The server ran this job in deterministic sequential mode —
            // an offline run of the same spec must agree exactly.
            let (model, _) = spec.problem.build().unwrap();
            let reference = spec
                .build_solver()
                .unwrap()
                .run_sequential(&model, spec.termination());
            assert_eq!(result.energy, reference.energy, "spec {spec:?}");
            assert_eq!(result.best, reference.best);
            assert_eq!(result.batches, reference.batches);
            assert_eq!(model.energy(&result.best), result.energy, "energy honest");
        }
    }
    assert_eq!(total, CLIENTS * JOBS_PER_CLIENT);
    server.shutdown();
}

#[test]
fn mid_run_cancel_is_honored_quickly() {
    let server = start_server(1);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // Effectively unbounded batch budget: only the cancel ends it.
    let id = client.submit(&job(48, 7, u64::MAX / 2)).expect("submit");

    // Wait until the single worker picks it up.
    let t0 = Instant::now();
    loop {
        let (phase, _) = client.status(id).expect("status");
        if phase == "running" {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "job never started: {phase}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(30)); // let it do real work

    let cancel_at = Instant::now();
    let phase = client.cancel(id).expect("cancel");
    assert!(phase == "running" || phase == "cancelled", "{phase}");
    let outcome = client.wait_result(id).expect("result after cancel");
    let latency = cancel_at.elapsed();
    let bound = cancel_latency_bound();
    assert!(latency < bound, "cancel took {latency:?} (bound {bound:?})");
    assert_eq!(outcome.phase, "cancelled");
    // Partial result: whatever was best when the flag tripped.
    assert!(outcome.result.expect("partial result").batches > 0);
    server.shutdown();
}

#[test]
fn past_deadline_job_is_rejected_at_admission() {
    let server = start_server(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let late = JobSpec {
        deadline_unix_ms: Some(now_unix_ms().saturating_sub(2_000)),
        ..job(16, 3, 50)
    };
    let err = client.submit(&late).expect_err("must be rejected");
    assert!(err.contains("deadline"), "{err}");

    // And the raw wire response really is a `rejected` line.
    client
        .send(&Request::Submit(Box::new(JobSpec {
            deadline_unix_ms: Some(1),
            ..job(16, 3, 50)
        })))
        .unwrap();
    match client.recv().unwrap() {
        Response::Rejected { reason, .. } => assert!(reason.contains("deadline"), "{reason}"),
        other => panic!("expected rejected, got {other:?}"),
    }

    // A future deadline passes admission and completes.
    let ok = JobSpec {
        deadline_unix_ms: Some(now_unix_ms() + 120_000),
        ..job(16, 3, 50)
    };
    let id = client.submit(&ok).expect("future deadline admitted");
    assert_eq!(client.wait_result(id).unwrap().phase, "done");
    server.shutdown();
}

#[test]
fn subscribe_streams_monotone_incumbents() {
    let server = start_server(1);
    let addr = server.local_addr();

    // Park the single worker on a blocker so the real job stays queued
    // until the subscription is definitely attached — no race between
    // subscribing and the job finishing.
    let mut submitter = Client::connect(addr).expect("connect");
    let blocker = submitter
        .submit(&JobSpec {
            time_ms: Some(300),
            max_batches: None,
            ..job(32, 1, 0)
        })
        .expect("blocker");
    // Big enough instance and budget that the best improves several times.
    let id = submitter.submit(&job(64, 11, 4_000)).expect("submit");

    // Subscribe from a second connection, as a dashboard would.
    let mut watcher = Client::connect(addr).expect("connect watcher");
    let (incumbents, outcome) = watcher.subscribe(id).expect("subscribe stream");
    submitter.wait_result(blocker).expect("blocker result");

    assert_eq!(outcome.phase, "done");
    let final_energy = outcome.result.expect("result").energy;
    assert!(
        !incumbents.is_empty(),
        "stream must carry at least one incumbent"
    );
    for pair in incumbents.windows(2) {
        assert!(
            pair[1].0 <= pair[0].0,
            "incumbent energies must be non-increasing: {incumbents:?}"
        );
    }
    assert_eq!(
        incumbents.last().unwrap().0,
        final_energy,
        "stream must end at the final best"
    );
    server.shutdown();
}

#[test]
fn priorities_order_queued_work_on_a_busy_server() {
    // One worker, one long job holding it, then a low- and a high-priority
    // job: the high-priority one must finish first.
    let server = start_server(1);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let blocker = client
        .submit(&JobSpec {
            time_ms: Some(600),
            max_batches: None,
            ..job(32, 1, 0)
        })
        .expect("blocker");
    let low = client
        .submit(&JobSpec {
            priority: -5,
            ..job(16, 2, 40)
        })
        .expect("low");
    let high = client
        .submit(&JobSpec {
            priority: 5,
            ..job(16, 3, 40)
        })
        .expect("high");

    // Register both result-waits on ONE connection: terminal `done` lines
    // are pushed in completion order, so the arrival order on this socket
    // IS the execution order — no wall-clock comparison, no race. The
    // request order (low first) is the opposite of the expected completion
    // order, so a broken scheduler would flip the arrivals.
    let mut waiter = Client::connect(addr).expect("connect");
    waiter.send(&Request::Result(low)).expect("send");
    waiter.send(&Request::Result(high)).expect("send");
    let mut done_order = Vec::new();
    while done_order.len() < 2 {
        if let Response::Done { job, phase, .. } = waiter.recv().expect("recv") {
            assert_eq!(phase, "done");
            done_order.push(job);
        }
    }
    assert_eq!(
        done_order,
        vec![high, low],
        "high priority must complete before low"
    );
    client.wait_result(blocker).expect("blocker result");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_units() {
    // One worker held by a huge job, three more jobs queued behind it.
    // `shutdown()` must stop dispatch, revoke the queued units without
    // executing them, interrupt the running unit at its next batch, and
    // join promptly — with the partially-run job reporting `cancelled`
    // and keeping its best-so-far result.
    let server = start_server(1);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let running_id = client.submit(&job(32, 9, u64::MAX / 2)).expect("submit");
    let queued_ids: Vec<_> = (0..3)
        .map(|i| client.submit(&job(16, 20 + i, 500)).expect("submit"))
        .collect();

    let t0 = Instant::now();
    loop {
        let (phase, _) = client.status(running_id).expect("status");
        if phase == "running" {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(20), "never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(30)); // let it do real work

    // Keep record handles so the outcomes stay inspectable after the
    // sockets are gone.
    let state = server.state().clone();
    let running = state.registry.get(running_id).expect("record");
    let queued: Vec<_> = queued_ids
        .iter()
        .map(|&id| state.registry.get(id).expect("record"))
        .collect();

    let shutdown_at = Instant::now();
    server.shutdown();
    assert!(
        shutdown_at.elapsed() < Duration::from_secs(10),
        "shutdown hung: {:?}",
        shutdown_at.elapsed()
    );

    let (phase, result, _) = running.snapshot();
    assert_eq!(phase.name(), "cancelled");
    let partial = result.expect("partially-run job keeps its best-so-far");
    assert!(partial.batches > 0, "it really was mid-run");
    for record in &queued {
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase.name(), "cancelled", "drained job {}", record.id);
        assert!(result.is_none(), "never-run job has no fabricated result");
        let (_, started, _) = record.unit_counts();
        assert_eq!(started, 0, "drained unit executed on job {}", record.id);
    }
}

#[test]
fn timeline_reconstructs_a_decomposed_job_and_exports_a_chrome_trace() {
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Explicitly decompose into 4 stealable units so the timeline carries
    // several unit spans (with queue waits) rather than one whole-job run.
    let id = client
        .submit(&JobSpec {
            units: Some(4),
            ..job(48, 13, 2_000)
        })
        .expect("submit");
    let outcome = client.wait_result(id).expect("result");
    assert_eq!(outcome.phase, "done", "{:?}", outcome.error);

    let (events, dropped) = client.timeline(id).expect("timeline");
    assert_eq!(dropped, 0, "a short job must not hit the timeline cap");

    // Timestamps are monotone by construction (stamped under the log's
    // lock) — the wire must preserve that.
    for pair in events.windows(2) {
        assert!(
            pair[1].at_us >= pair[0].at_us,
            "timeline out of order: {events:?}"
        );
    }

    // Lifecycle shape: admission first, then ≥2 unit start/end spans (4
    // units on 2 workers), incumbents in between, terminal `done` last.
    assert!(
        matches!(
            events.first().expect("non-empty").kind,
            TimelineKind::Admitted
        ),
        "first event must be admission: {events:?}"
    );
    let starts: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            TimelineKind::UnitStart { unit, .. } => Some(*unit),
            _ => None,
        })
        .collect();
    let ends = events
        .iter()
        .filter(|e| matches!(&e.kind, TimelineKind::UnitEnd { end, .. } if end == "completed"))
        .count();
    assert!(starts.len() >= 2, "expected ≥2 unit spans: {events:?}");
    assert_eq!(starts.len(), ends, "every started unit must end");
    // Ordinals are unique (1-based from `begin_unit`); two workers may
    // interleave their pushes, so order across workers is not asserted.
    let distinct: std::collections::BTreeSet<_> = starts.iter().collect();
    assert_eq!(
        distinct.len(),
        starts.len(),
        "duplicate ordinal: {starts:?}"
    );
    match &events.last().expect("non-empty").kind {
        TimelineKind::Terminal { phase } => assert_eq!(phase, "done"),
        other => panic!("last event must be terminal, got {other:?}"),
    }

    // The Chrome export of that timeline must be valid trace_event JSON:
    // a traceEvents array whose objects carry name/cat/ph/ts/pid/tid.
    let chrome = timeline_to_chrome(id, &events);
    assert!(
        chrome.len() >= events.len(),
        "spans + instants can't collapse below the event count"
    );
    let doc = dabs::obs::chrome::write_trace(&chrome);
    let parsed = serde::json::Json::parse(&doc).expect("trace file parses");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), chrome.len());
    let mut phases_seen = std::collections::BTreeSet::new();
    for ev in trace_events {
        assert!(ev.get_str("name").is_some(), "missing name: {ev:?}");
        assert!(ev.get_str("cat").is_some(), "missing cat: {ev:?}");
        let ph = ev.get_str("ph").expect("missing ph");
        assert!(matches!(ph, "X" | "i" | "B" | "E"), "bad phase {ph:?}");
        phases_seen.insert(ph.to_string());
        assert!(ev.get_u64("ts").is_some(), "missing ts: {ev:?}");
        assert!(ev.get_u64("pid").is_some(), "missing pid: {ev:?}");
        assert!(ev.get_u64("tid").is_some(), "missing tid: {ev:?}");
        if ph == "X" {
            assert!(ev.get_u64("dur").is_some(), "complete span needs dur");
        }
    }
    // Unit runs export as complete spans, lifecycle marks as instants.
    assert!(phases_seen.contains("X") && phases_seen.contains("i"));

    // The metrics verb sees the work this job just did.
    let metrics = client.metrics().expect("metrics");
    let popped = metrics.get("pool.units_popped").expect("pool counter");
    assert!(popped.value >= starts.len() as f64);
    assert!(metrics.get("pool.queue_wait.p50").is_some());
    assert!(metrics.get("solver.flips").expect("solver counter").value > 0.0);
    server.shutdown();
}

#[test]
fn v2_handshake_negotiates_and_v1_clients_still_work() {
    let server = start_server(1);
    let addr = server.local_addr().to_string();

    // The builder performs the hello handshake and lands on v2.
    let mut v2 = Client::builder(addr.clone())
        .tenant("e2e")
        .connect()
        .expect("v2 connect");
    assert_eq!(v2.protocol_version(), PROTOCOL_VERSION);
    let ack = v2.try_submit(&job(16, 4, 30)).expect("typed submit");
    assert!(!ack.duplicate);
    assert_eq!(v2.wait_result(ack.job).expect("result").phase, "done");

    // The legacy constructor speaks v1 — no hello, same verbs, same
    // answers. Existing deployments must keep working unchanged.
    let mut v1 = Client::connect(server.local_addr()).expect("v1 connect");
    assert_eq!(v1.protocol_version(), 1);
    let id = v1.submit(&job(16, 5, 30)).expect("v1 submit");
    assert_eq!(v1.wait_result(id).expect("result").phase, "done");
    server.shutdown();
}

#[test]
fn idempotent_resubmit_collapses_over_the_wire() {
    let server = start_server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::builder(addr.clone()).connect().expect("connect");

    let spec = JobSpec {
        idempotency_key: Some("e2e-collapse".into()),
        ..job(20, 8, 60)
    };
    let first = client.try_submit(&spec).expect("first submit");
    assert!(!first.duplicate);
    let outcome = client.wait_result(first.job).expect("result");
    assert_eq!(outcome.phase, "done");
    let energy = outcome.result.expect("result").energy;

    // Same key, fresh connection — the retry a client does after a lost
    // ack. It must land on the same job and fetch the original result.
    let mut retry = Client::builder(addr).connect().expect("reconnect");
    let second = retry.try_submit(&spec).expect("resubmit");
    assert!(second.duplicate, "same key must collapse");
    assert_eq!(second.job, first.job);
    let replayed = retry.wait_result(second.job).expect("replayed result");
    assert_eq!(replayed.phase, "done");
    assert_eq!(replayed.result.expect("result").energy, energy);
    server.shutdown();
}

#[test]
fn wal_preserves_jobs_across_graceful_restart() {
    let wal_dir = std::env::temp_dir().join(format!(
        "dabs-wal-restart-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 64,
        wal_dir: Some(wal_dir.clone()),
        ..ServerConfig::default()
    };

    let first_id;
    let energy;
    {
        let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
        let mut client = Client::builder(server.local_addr().to_string())
            .connect()
            .expect("connect");
        let ack = client
            .try_submit(&JobSpec {
                idempotency_key: Some("restart-done".into()),
                ..job(20, 3, 50)
            })
            .expect("submit");
        first_id = ack.job;
        let outcome = client.wait_result(ack.job).expect("result");
        assert_eq!(outcome.phase, "done");
        energy = outcome.result.expect("result").energy;
        server.shutdown();
    }

    // Restart on the same log: the terminal outcome and the idempotency
    // key both survive, and new ids never collide with replayed ones.
    let server = Server::bind("127.0.0.1:0", config).expect("rebind");
    let mut client = Client::builder(server.local_addr().to_string())
        .connect()
        .expect("reconnect");
    let again = client
        .try_submit(&JobSpec {
            idempotency_key: Some("restart-done".into()),
            ..job(20, 3, 50)
        })
        .expect("resubmit");
    assert!(again.duplicate, "key must survive the restart");
    assert_eq!(again.job, first_id);
    let replayed = client.wait_result(again.job).expect("replayed result");
    assert_eq!(replayed.phase, "done");
    assert_eq!(replayed.result.expect("result").energy, energy);

    let fresh = client.try_submit(&job(16, 9, 30)).expect("fresh submit");
    assert!(
        fresh.job > first_id,
        "id allocation resumes past replayed ids"
    );
    assert_eq!(client.wait_result(fresh.job).expect("result").phase, "done");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn stats_and_ping_respond_over_the_wire() {
    let server = start_server(2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    let id = client.submit(&job(16, 5, 30)).expect("submit");
    client.wait_result(id).expect("result");
    match client.stats().expect("stats") {
        Response::Stats {
            finished, workers, ..
        } => {
            assert!(finished >= 1);
            assert_eq!(workers, 2);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}
