//! End-to-end: MaxCut → QUBO → DABS → decoded cut, against proven optima.

use dabs::baselines::exact::exhaustive;
use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::gset;
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn dabs_solves_small_complete_maxcut_to_proven_optimum() {
    let problem = gset::k2000_like(18, 11);
    let model = Arc::new(problem.to_qubo());
    let truth = exhaustive(&model);

    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.params = SearchParams::maxcut();
    cfg.seed = 12;
    let solver = DabsSolver::new(cfg).unwrap();
    let r = solver.run(
        &model,
        Termination::target(truth.energy).with_time(Duration::from_secs(30)),
    );
    assert!(r.reached_target, "DABS missed optimum {}", truth.energy);
    assert_eq!(r.energy, truth.energy);
    // decoded cut matches the negated energy
    assert_eq!(problem.cut_value(&r.best), -r.energy);
}

#[test]
fn dabs_solves_sparse_maxcut_to_proven_optimum() {
    let problem = gset::g39_like(20, 60, 13);
    let model = Arc::new(problem.to_qubo());
    let truth = exhaustive(&model);

    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.params = SearchParams::maxcut();
    cfg.seed = 14;
    let solver = DabsSolver::new(cfg).unwrap();
    let r = solver.run(
        &model,
        Termination::target(truth.energy).with_time(Duration::from_secs(30)),
    );
    assert!(r.reached_target);
    assert_eq!(problem.cut_value(&r.best), -truth.energy);
}

#[test]
fn abs_baseline_also_solves_but_is_the_restricted_portfolio() {
    let problem = gset::k2000_like(16, 15);
    let model = Arc::new(problem.to_qubo());
    let truth = exhaustive(&model);

    let mut cfg = DabsConfig::abs_baseline(2, 2);
    cfg.params = SearchParams::maxcut();
    cfg.seed = 16;
    let solver = DabsSolver::new(cfg).unwrap();
    let r = solver.run(
        &model,
        Termination::target(truth.energy).with_time(Duration::from_secs(30)),
    );
    assert!(r.reached_target, "ABS missed optimum on a 16-bit instance");
    // every dispatched packet used CyclicMin
    let total = r.frequencies.total();
    assert_eq!(
        r.frequencies.algo_executed[dabs::search::MainAlgorithm::CyclicMin.index()],
        total
    );
}
