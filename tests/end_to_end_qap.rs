//! End-to-end: QAP → one-hot QUBO → DABS → decoded assignment.

use dabs::baselines::exact::exhaustive;
use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::qaplib;
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn dabs_finds_feasible_optimal_assignment_of_tiny_qap() {
    // n = 4 → 16 bits: exhaustively provable.
    let qap = qaplib::tai_like(4, 21);
    let penalty = qap.auto_penalty();
    let model = Arc::new(qap.to_qubo(penalty));
    let truth = exhaustive(&model);

    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.params = SearchParams::qap_qasp();
    cfg.seed = 22;
    let solver = DabsSolver::new(cfg).unwrap();
    let r = solver.run(
        &model,
        Termination::target(truth.energy).with_time(Duration::from_secs(30)),
    );
    assert!(r.reached_target, "missed QUBO optimum {}", truth.energy);

    // the optimum must decode to a feasible permutation
    let g = qap
        .decode(&r.best)
        .expect("optimum must be one-hot feasible");
    let cost = qap.cost(&g);
    assert_eq!(r.energy, cost - 4 * penalty, "E = C − n·p identity");

    // and that permutation must be the true QAP optimum
    let mut best_cost = i64::MAX;
    permute(&mut (0..4).collect::<Vec<_>>(), 4, &mut |perm| {
        best_cost = best_cost.min(qap.cost(perm));
    });
    assert_eq!(cost, best_cost);
}

#[test]
fn grid_qap_decodes_feasibly_under_time_budget() {
    let qap = qaplib::nug_like(2, 3, 23); // n = 6 → 36 bits
    let penalty = qap.auto_penalty();
    let model = Arc::new(qap.to_qubo(penalty));

    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.params = SearchParams::qap_qasp();
    cfg.seed = 24;
    let solver = DabsSolver::new(cfg).unwrap();
    let r = solver.run(&model, Termination::time(Duration::from_secs(3)));
    let g = qap.decode(&r.best).expect("best should be feasible");
    assert_eq!(r.energy, qap.cost(&g) - 6 * penalty);
}

/// Heap's algorithm.
fn permute<F: FnMut(&[usize])>(arr: &mut Vec<usize>, k: usize, f: &mut F) {
    if k == 1 {
        f(arr);
        return;
    }
    for i in 0..k {
        permute(arr, k - 1, f);
        if k.is_multiple_of(2) {
            arr.swap(i, k - 1);
        } else {
            arr.swap(0, k - 1);
        }
    }
}
