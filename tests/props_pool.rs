//! Property-based tests on the elastic unit scheduler.
//!
//! Two families of invariants:
//!
//! * **Conservation** — under random submit/cancel interleavings across a
//!   multi-worker pool, no unit is ever lost or duplicated: every job goes
//!   terminal, every planned unit is accounted exactly once, and a job that
//!   folds `done` has executed *exactly* its batch budget (splitting moves
//!   budget between units, it never mints or burns any).
//! * **Sequential equivalence** — a one-worker pool executes a decomposed
//!   job as the same unit sequence the standalone `execute()` fold runs, so
//!   their merged results are identical field-for-field.

use dabs::server::{execute, ElasticPool, JobRegistry, JobSpec, ProblemSpec};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn spec(n: usize, seed: u64, batches: u64, units: u32, priority: i32) -> JobSpec {
    JobSpec {
        problem: ProblemSpec::random(n, seed),
        devices: 2,
        blocks: 1,
        seed,
        max_batches: Some(batches),
        units: (units > 0).then_some(units),
        priority,
        ..JobSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn no_unit_is_lost_or_duplicated_under_random_interleavings(
        seed in any::<u64>(),
        workers in 1usize..4,
        jobs in 2usize..6,
        cancel_mask in any::<u8>(),
    ) {
        let registry = Arc::new(JobRegistry::new());
        let pool = ElasticPool::spawn(workers, 256);
        let mut records = Vec::new();
        for j in 0..jobs {
            let s = seed.wrapping_add(j as u64);
            let record = registry.register(spec(
                16,
                s,
                200 + (s % 5) * 150,
                (s % 7) as u32, // 0 = pool decides
                (s % 3) as i32 - 1,
            ));
            pool.submit(&record).unwrap();
            // Cancel a pseudo-random subset immediately after admission, so
            // cancels race admission, dispatch, and execution.
            if (cancel_mask >> (j % 8)) & 1 == 1 {
                record.request_cancel();
            }
            records.push(record);
        }
        for record in &records {
            prop_assert!(
                record.wait_terminal(Duration::from_secs(120)),
                "job {} never went terminal",
                record.id
            );
        }
        // Close and join so every still-queued unit has been drained before
        // the unit books are inspected.
        pool.close();
        pool.join();
        for record in &records {
            let (total, started, finished) = record.unit_counts();
            // Conservation: a unit is claimed at most once and ends at most
            // once. (A job cancelled while queued goes terminal directly and
            // its units are dropped unaccounted — so `finished == total` is
            // only owed when the fold decided the phase, i.e. for `done`.)
            prop_assert!(started <= total, "job {}", record.id);
            prop_assert!(finished <= total, "job {}", record.id);
            prop_assert!(finished >= started, "job {}: a claimed unit never ended", record.id);
            let (phase, result, error) = record.snapshot();
            let budget = record.spec.max_batches.unwrap();
            match phase.name() {
                "done" => {
                    prop_assert_eq!(finished, total, "job {}", record.id);
                    let result = result.expect("done carries a result");
                    prop_assert_eq!(
                        result.batches, budget,
                        "job {}: done must spend exactly its budget",
                        record.id
                    );
                }
                "cancelled" => {
                    // Partial work never exceeds the budget (no duplicated
                    // unit), and a result is only present if something ran.
                    if let Some(result) = result {
                        prop_assert!(result.batches <= budget, "job {}", record.id);
                    }
                }
                other => prop_assert!(false, "job {}: unexpected phase {} ({:?})",
                    record.id, other, error),
            }
        }
    }

    #[test]
    fn one_worker_pool_equals_the_sequential_unit_fold(
        seed in any::<u64>(),
        batches in 150u64..900,
        units in 1u32..6,
    ) {
        let make = || spec(24, seed, batches, units, 0);

        // Reference: the standalone fold (same decomposition, FIFO order,
        // incumbent chain between consecutive units, no pool).
        let reference = Arc::new(JobRegistry::new()).register(make());
        execute(&reference);
        let (ref_phase, ref_result, ref_error) = reference.snapshot();
        prop_assert_eq!(ref_phase.name(), "done", "{:?}", ref_error);
        let ref_result = ref_result.unwrap();

        // Same spec through a one-worker pool.
        let registry = Arc::new(JobRegistry::new());
        let pool = ElasticPool::spawn(1, 64);
        let record = registry.register(make());
        pool.submit(&record).unwrap();
        prop_assert!(record.wait_terminal(Duration::from_secs(120)));
        pool.close();
        pool.join();
        let (phase, result, error) = record.snapshot();
        prop_assert_eq!(phase.name(), "done", "{:?}", error);
        let result = result.unwrap();

        prop_assert_eq!(result.energy, ref_result.energy);
        prop_assert_eq!(result.best.clone(), ref_result.best.clone());
        prop_assert_eq!(result.batches, ref_result.batches);
        prop_assert_eq!(result.flips, ref_result.flips);
        prop_assert_eq!(result.restarts, ref_result.restarts);
        prop_assert_eq!(result.reached_target, ref_result.reached_target);
    }
}
