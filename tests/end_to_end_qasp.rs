//! End-to-end: QASP → Ising → QUBO → DABS, with Hamiltonian cross-checks.

use dabs::baselines::exact::exhaustive;
use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::{QaspInstance, Topology};
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn dabs_solves_small_qasp_and_hamiltonian_identity_holds() {
    // one Chimera cell (8 qubits) plus a second cell = 16 qubits
    let topo = Topology::chimera(1, 2, 4);
    let qasp = QaspInstance::generate(&topo, 16, 31);
    let model = Arc::new(qasp.qubo().clone());
    let truth = exhaustive(&model);

    let mut cfg = DabsConfig::dabs(2, 2);
    cfg.params = SearchParams::qap_qasp();
    cfg.seed = 32;
    let solver = DabsSolver::new(cfg).unwrap();
    let r = solver.run(
        &model,
        Termination::target(truth.energy).with_time(Duration::from_secs(30)),
    );
    assert!(r.reached_target);
    // Ising Hamiltonian of the answer matches through the offset
    assert_eq!(qasp.ising().hamiltonian(&r.best), r.energy + qasp.offset());
}

#[test]
fn resolution_changes_instance_but_not_solvability() {
    let topo = Topology::chimera(1, 2, 4);
    for r in [1i64, 16, 256] {
        let qasp = QaspInstance::generate(&topo, r, 33);
        let model = Arc::new(qasp.qubo().clone());
        let truth = exhaustive(&model);
        let mut cfg = DabsConfig::dabs(2, 1);
        cfg.params = SearchParams::qap_qasp();
        cfg.seed = 34;
        let solver = DabsSolver::new(cfg).unwrap();
        let run = solver.run(
            &model,
            Termination::target(truth.energy).with_time(Duration::from_secs(30)),
        );
        assert!(
            run.reached_target,
            "resolution {r}: DABS should still find the optimum"
        );
    }
}
