//! Integration tests of the host↔device packet protocol under concurrency:
//! many blocks, many packets, failure injection (dropped channels, stop
//! mid-stream), and bookkeeping fidelity.

use crossbeam::channel;
use dabs::gpu_sim::{DeviceConfig, DeviceStats, Packet, SharedBest, StopFlag, VirtualDevice};
use dabs::model::{QuboBuilder, QuboModel, Solution};
use dabs::rng::{Rng64, Xorshift64Star};
use dabs::search::{MainAlgorithm, SearchParams};
use std::sync::Arc;
use std::time::Duration;

fn random_model(n: usize, seed: u64) -> QuboModel {
    let mut rng = Xorshift64Star::new(seed);
    let mut b = QuboBuilder::new(n);
    for i in 0..n {
        b.add_linear(i, rng.next_range_i64(-9, 9));
        for j in (i + 1)..n {
            if rng.next_bool(0.25) {
                b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn heavy_pipeline_round_trips_every_packet_with_fidelity() {
    let n = 48;
    let model = Arc::new(random_model(n, 61));
    let (req_tx, req_rx) = channel::bounded::<Packet>(8);
    let (res_tx, res_rx) = channel::unbounded::<Packet>();
    let shared = Arc::new(SharedBest::new());
    let stop = Arc::new(StopFlag::new());
    let stats = Arc::new(DeviceStats::new());
    let handle = VirtualDevice::spawn(
        Arc::clone(&model),
        DeviceConfig {
            blocks: 4,
            params: SearchParams::default(),
            seed: 62,
        },
        req_rx,
        res_tx,
        Arc::clone(&shared),
        Arc::clone(&stop),
        Arc::clone(&stats),
    );

    let total = 60usize;
    let feeder = {
        let req_tx = req_tx.clone();
        std::thread::spawn(move || {
            let mut rng = Xorshift64Star::new(63);
            for k in 0..total {
                let algo = MainAlgorithm::ALL[k % 5];
                let tag = (k % 9) as u8;
                req_tx
                    .send(Packet::request(Solution::random(n, &mut rng), algo, tag))
                    .unwrap();
            }
        })
    };

    let mut tags = [0u32; 9];
    let mut algos = [0u32; 5];
    for _ in 0..total {
        let r = res_rx.recv_timeout(Duration::from_secs(60)).unwrap();
        assert!(r.is_result());
        // energy is faithful
        assert_eq!(model.energy(&r.solution), r.energy.unwrap());
        // bookkeeping fields round-trip
        tags[r.genetic_op as usize] += 1;
        algos[r.algorithm.index()] += 1;
    }
    feeder.join().unwrap();
    stop.stop();
    handle.join();

    // every tag and algorithm class came back in the right multiplicity
    for (t, &count) in tags.iter().enumerate() {
        let expect = (total / 9) as u32 + u32::from(t < total % 9);
        assert_eq!(count, expect, "tag {t}");
    }
    assert_eq!(algos.iter().sum::<u32>(), total as u32);
    assert_eq!(stats.batches(), total as u64);
    assert!(stats.flips() >= total as u64 * SearchParams::default().batch_flips(n) / 2);
}

#[test]
fn shared_best_matches_minimum_of_all_results() {
    let n = 32;
    let model = Arc::new(random_model(n, 64));
    let (req_tx, req_rx) = channel::bounded::<Packet>(4);
    let (res_tx, res_rx) = channel::unbounded::<Packet>();
    let shared = Arc::new(SharedBest::new());
    let stop = Arc::new(StopFlag::new());
    let handle = VirtualDevice::spawn(
        Arc::clone(&model),
        DeviceConfig {
            blocks: 3,
            params: SearchParams::default(),
            seed: 65,
        },
        req_rx,
        res_tx,
        Arc::clone(&shared),
        Arc::clone(&stop),
        Arc::new(DeviceStats::new()),
    );
    let mut rng = Xorshift64Star::new(66);
    let mut min_seen = i64::MAX;
    for k in 0..30 {
        req_tx
            .send(Packet::request(
                Solution::random(n, &mut rng),
                MainAlgorithm::ALL[k % 5],
                0,
            ))
            .unwrap();
    }
    for _ in 0..30 {
        let r = res_rx.recv_timeout(Duration::from_secs(60)).unwrap();
        min_seen = min_seen.min(r.energy.unwrap());
    }
    stop.stop();
    handle.join();
    assert_eq!(shared.get(), min_seen);
}

#[test]
fn stopping_mid_stream_terminates_cleanly() {
    let n = 64;
    let model = Arc::new(random_model(n, 67));
    let (req_tx, req_rx) = channel::bounded::<Packet>(64);
    let (res_tx, res_rx) = channel::unbounded::<Packet>();
    let stop = Arc::new(StopFlag::new());
    let handle = VirtualDevice::spawn(
        model,
        DeviceConfig {
            blocks: 2,
            params: SearchParams {
                batch_flip_factor: 20.0, // long batches
                ..SearchParams::default()
            },
            seed: 68,
        },
        req_rx,
        res_tx,
        Arc::new(SharedBest::new()),
        Arc::clone(&stop),
        Arc::new(DeviceStats::new()),
    );
    let mut rng = Xorshift64Star::new(69);
    for _ in 0..20 {
        req_tx
            .send(Packet::request(
                Solution::random(n, &mut rng),
                MainAlgorithm::MaxMin,
                0,
            ))
            .unwrap();
    }
    // wait for the first result so work is definitely in flight, then stop
    let _ = res_rx.recv_timeout(Duration::from_secs(60)).unwrap();
    stop.stop();
    handle.join(); // must return promptly even with queued requests
}

#[test]
fn multiple_devices_share_nothing_but_the_model() {
    let n = 40;
    let model = Arc::new(random_model(n, 70));
    let mut handles = Vec::new();
    let mut receivers = Vec::new();
    let stop = Arc::new(StopFlag::new());
    for d in 0..3u64 {
        let (req_tx, req_rx) = channel::bounded::<Packet>(4);
        let (res_tx, res_rx) = channel::unbounded::<Packet>();
        handles.push(VirtualDevice::spawn(
            Arc::clone(&model),
            DeviceConfig {
                blocks: 2,
                params: SearchParams::default(),
                seed: 71 + d,
            },
            req_rx,
            res_tx,
            Arc::new(SharedBest::new()),
            Arc::clone(&stop),
            Arc::new(DeviceStats::new()),
        ));
        let mut rng = Xorshift64Star::new(80 + d);
        for k in 0..10 {
            req_tx
                .send(Packet::request(
                    Solution::random(n, &mut rng),
                    MainAlgorithm::ALL[k % 5],
                    d as u8,
                ))
                .unwrap();
        }
        receivers.push((req_tx, res_rx, d));
    }
    for (_req_tx, res_rx, d) in &receivers {
        for _ in 0..10 {
            let r = res_rx.recv_timeout(Duration::from_secs(60)).unwrap();
            assert_eq!(r.genetic_op, *d as u8, "packets must not cross devices");
        }
    }
    stop.stop();
    for h in handles {
        h.join();
    }
}
