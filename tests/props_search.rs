//! Property-based tests on the search layer: incremental-state consistency
//! under arbitrary flip programs, batch-search invariants, pool invariants.

use dabs::core::{GeneticOp, PoolEntry, SolutionPool};
use dabs::model::{BestTracker, IncrementalState, QuboBuilder, QuboModel, Solution};
use dabs::search::{BatchSearch, MainAlgorithm, SearchParams};
use proptest::prelude::*;

fn arb_qubo(max_n: usize) -> impl Strategy<Value = QuboModel> {
    (4..=max_n).prop_flat_map(|n| {
        let diag = proptest::collection::vec(-15i64..=15, n);
        let edges = proptest::collection::vec(
            ((0..n), (0..n), -15i64..=15).prop_filter("no loops", |(i, j, _)| i != j),
            1..(n * 3),
        );
        (Just(n), diag, edges).prop_map(|(n, diag, edges)| {
            let mut b = QuboBuilder::new(n);
            for (i, d) in diag.into_iter().enumerate() {
                b.add_linear(i, d);
            }
            for (i, j, w) in edges {
                b.add_quadratic(i, j, w);
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_state_survives_arbitrary_flip_programs(
        q in arb_qubo(24),
        program in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        let mut st = IncrementalState::new(&q);
        for p in program {
            st.flip(p as usize % q.n());
        }
        // full recomputation agrees with the incremental view
        st.assert_consistent();
    }

    #[test]
    fn batch_search_result_energy_matches_model(
        q in arb_qubo(24),
        seed in any::<u64>(),
        algo_idx in 0usize..5,
    ) {
        let n = q.n();
        let algo = MainAlgorithm::ALL[algo_idx];
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        let target = Solution::random(n, &mut rng);
        let mut st = IncrementalState::new(&q);
        let mut batch = BatchSearch::new(n, SearchParams::default());
        let out = batch.run(&mut st, &target, algo, &mut rng);
        prop_assert_eq!(q.energy(&out.best), out.energy);
        prop_assert!(out.flips > 0 || st.solution() == &target);
        // the resident state is still internally consistent
        st.assert_consistent();
    }

    #[test]
    fn batch_best_is_at_least_as_good_as_visited_endpoint(
        q in arb_qubo(20),
        seed in any::<u64>(),
    ) {
        let n = q.n();
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        let target = Solution::random(n, &mut rng);
        let mut st = IncrementalState::new(&q);
        let mut batch = BatchSearch::new(n, SearchParams::default());
        let out = batch.run(&mut st, &target, MainAlgorithm::PositiveMin, &mut rng);
        prop_assert!(out.energy <= st.energy(), "best must dominate the endpoint");
        prop_assert!(out.energy <= q.energy(&target), "best must dominate the target");
    }

    #[test]
    fn pool_stays_sorted_and_bounded(
        energies in proptest::collection::vec(-1000i64..1000, 1..60),
        capacity in 1usize..12,
    ) {
        let mut pool = SolutionPool::new(capacity, false);
        let mut rng = dabs::rng::Xorshift64Star::new(7);
        for e in &energies {
            pool.insert(PoolEntry {
                solution: Solution::random(16, &mut rng),
                energy: *e,
                algorithm: MainAlgorithm::MaxMin,
                operation: GeneticOp::Mutation,
            });
        }
        prop_assert!(pool.len() <= capacity);
        // sorted ascending
        let es: Vec<i64> = pool.iter().map(|p| p.energy).collect();
        for w in es.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // the pool holds the k smallest energies seen
        let mut sorted = energies.clone();
        sorted.sort_unstable();
        let expect: Vec<i64> = sorted.into_iter().take(pool.len()).collect();
        prop_assert_eq!(es, expect);
    }

    #[test]
    fn best_tracker_never_regresses(
        q in arb_qubo(20),
        program in proptest::collection::vec(any::<u16>(), 1..100),
    ) {
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(q.n());
        let mut minimum = i64::MAX;
        for p in program {
            st.flip(p as usize % q.n());
            best.observe(&st);
            minimum = minimum.min(st.energy());
            prop_assert_eq!(best.energy(), minimum);
            prop_assert!(best.energy() <= st.energy());
        }
        prop_assert_eq!(q.energy(best.solution()), best.energy());
    }

    #[test]
    fn greedy_always_lands_in_local_minimum(
        q in arb_qubo(20),
        seed in any::<u64>(),
    ) {
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        let start = Solution::random(q.n(), &mut rng);
        let mut st = IncrementalState::from_solution(&q, start);
        let mut best = BestTracker::unbounded(q.n());
        let mut tabu = dabs::search::TabuList::new(q.n(), 0);
        dabs::search::greedy(&mut st, &mut best, &mut tabu, u64::MAX);
        let (_, d) = st.min_delta();
        prop_assert!(d >= 0, "greedy must terminate at a local minimum");
    }

    #[test]
    fn straight_reaches_any_target(
        q in arb_qubo(20),
        seed in any::<u64>(),
    ) {
        let mut rng = dabs::rng::Xorshift64Star::new(seed);
        let target = Solution::random(q.n(), &mut rng);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(q.n());
        let mut tabu = dabs::search::TabuList::new(q.n(), 8);
        let flips = dabs::search::straight(&mut st, &mut best, &mut tabu, &target);
        prop_assert_eq!(st.solution(), &target);
        prop_assert_eq!(flips as usize, Solution::zeros(q.n()).hamming(&target));
    }
}
