//! Chaos soak: a seeded fault storm over a live server, then heal.
//!
//! One test, alone in its own binary so the process-wide obs counters it
//! asserts on (`pool.unit_panics`, `wal.errors`, …) see no traffic from
//! other tests. The storm is a capped, deterministic [`FaultPlan`]: unit
//! panics drive one job into quarantine, worker kills exercise the
//! supervisor, WAL fsync errors flip degraded mode (admissions are refused
//! with `wal_degraded` until the log heals), socket faults kill live
//! connections under retrying clients, and a queue squeeze triggers the
//! brownout shedder. Because every site carries a cap, the storm *ends*:
//! the soak's invariants are exact equalities against
//! [`FaultPlan::injected`], not tolerances.
//!
//! End-state invariants (the self-healing contract):
//! * every submitted job is terminal — none lost, none duplicated;
//! * the pool's live worker count is restored;
//! * `health` reports `ok` with no reasons;
//! * gauges match injected counts exactly.

use dabs::server::{
    net_obs, pool_obs, Client, ClientError, ErrorCode, FaultPlan, FaultSite, JobSpec, ProblemSpec,
    Server, ServerConfig,
};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKERS: usize = 2;
const CAPACITY: usize = 6;

fn tmp_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("dabs-chaos-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn spec(n: usize, batches: u64, units: u32, priority: i32, key: &str) -> JobSpec {
    JobSpec {
        problem: ProblemSpec::random(n, 9),
        max_batches: Some(batches),
        units: Some(units),
        priority,
        idempotency_key: Some(key.to_string()),
        ..JobSpec::default()
    }
}

/// Connect with retries: accept/read/write faults can kill the handshake.
fn connect_retry(addr: &str, prefix: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::builder(addr)
            .read_timeout(Duration::from_secs(10))
            .idempotency_prefix(prefix)
            .retry(10, Duration::from_millis(5), Duration::from_millis(100))
            .retry_seed(7)
            .connect()
        {
            Ok(c) => return c,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not connect through the storm: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn poll_until(what: &str, deadline: Duration, mut ok: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !ok() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn seeded_fault_storm_heals_with_no_lost_jobs() {
    let plan = Arc::new(
        FaultPlan::parse(concat!(
            "seed=42,unit_panic=1x3,worker_kill=1x2,wal_fsync=1x4,",
            "accept=1x1,read=1x2,write=1x2,unit_stall=1x2,stall_ms=5"
        ))
        .unwrap(),
    );
    let dir = tmp_dir();
    let panics0 = pool_obs().unit_panics.get();
    let quarantined0 = pool_obs().quarantined_jobs.get();
    let wal_errors0 = net_obs().wal_errors.get();
    let srv = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: WORKERS,
            queue_capacity: CAPACITY,
            wal_dir: Some(dir.clone()),
            chaos: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = srv.local_addr().to_string();
    let mut ids: Vec<u64> = Vec::new();

    // Phase 1 — quarantine under panic + worker-kill fire. The only live
    // job, so every injected panic lands on it: 3 panics → quarantined,
    // queued units refused, terminal `failed`. Worker kills re-push the
    // popped unit and die quietly; the supervisor restores them.
    let mut admin = connect_retry(&addr, "admin");
    let q_spec = spec(24, 400, 4, 0, "q-job");
    let q = admin.try_submit(&q_spec).expect("submit through storm").job;
    ids.push(q);
    let outcome = admin.try_wait_result(q).expect("terminal through storm");
    assert_eq!(outcome.phase, "failed", "{outcome:?}");
    assert!(
        outcome.error.as_deref().unwrap_or("").contains("panicked"),
        "stable panic error: {outcome:?}"
    );
    let record = srv.state().registry.get(q).expect("record retained");
    assert!(record.is_quarantined());
    assert_eq!(record.panic_count(), 3);

    // Resubmitting the same idempotency key must be refused with the
    // stable `quarantined` code (after any `wal_degraded` retries heal).
    match admin.try_submit(&q_spec) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Quarantined),
        other => panic!("quarantined resubmit must be refused, got {other:?}"),
    }

    // Phase 2 — the WAL heals: fsync faults are capped, the flusher's
    // retry timer spends them, health returns to ok.
    poll_until(
        "wal heal",
        Duration::from_secs(10),
        || matches!(admin.health(), Ok((status, _)) if status == "ok"),
    );

    // Phase 3 — normal load through socket chaos: clients whose
    // connections are killed mid-flight redial and replay by idempotency
    // key; every job completes exactly once.
    for (c, prefix) in ["alpha", "beta", "gamma"].iter().enumerate() {
        let mut client = connect_retry(&addr, prefix);
        for j in 0..2u64 {
            let key = format!("{prefix}-{j}");
            let ack = client
                .try_submit(&spec(24, 200, 2, 0, &key))
                .unwrap_or_else(|e| panic!("client {c} job {j}: {e}"));
            ids.push(ack.job);
            let outcome = client.try_wait_result(ack.job).unwrap();
            assert_eq!(outcome.phase, "done", "{outcome:?}");
        }
    }

    // Phase 4 — brownout: both workers blocked on time-budget jobs, the
    // queue filled to capacity with low-priority units, then one urgent
    // job. Admission sheds exactly one victim (2 units) to make room.
    let mut blockers = Vec::new();
    for b in 0..WORKERS {
        let ack = admin
            .try_submit(&JobSpec {
                problem: ProblemSpec::random(24, 9),
                time_ms: Some(400),
                priority: 9,
                idempotency_key: Some(format!("blocker-{b}")),
                ..JobSpec::default()
            })
            .unwrap();
        ids.push(ack.job);
        blockers.push(ack.job);
    }
    poll_until("blockers running", Duration::from_secs(5), || {
        blockers
            .iter()
            .all(|&b| matches!(admin.status(b).ok(), Some((phase, _)) if phase == "running"))
    });
    let mut victims = Vec::new();
    for v in 0..3u64 {
        let ack = admin
            .try_submit(&spec(24, 200, 2, 0, &format!("victim-{v}")))
            .unwrap();
        ids.push(ack.job);
        victims.push(ack.job);
    }
    let urgent = admin
        .try_submit(&spec(24, 200, 2, 5, "urgent"))
        .expect("urgent submit rides on shedding")
        .job;
    ids.push(urgent);
    let gauges = srv.state().pool.gauges();
    assert_eq!(gauges.shed_units, 2, "one 2-unit victim shed: {gauges:?}");
    assert_eq!(
        admin.try_wait_result(urgent).unwrap().phase,
        "done",
        "urgent job must complete"
    );
    let mut shed_jobs = 0;
    for &v in &victims {
        let outcome = admin.try_wait_result(v).unwrap();
        if outcome.phase == "failed" {
            assert!(
                outcome.error.as_deref().unwrap_or("").contains("shed"),
                "{outcome:?}"
            );
            shed_jobs += 1;
        } else {
            assert_eq!(outcome.phase, "done", "{outcome:?}");
        }
    }
    assert_eq!(shed_jobs, 1, "exactly one victim browns out");
    for &b in &blockers {
        let phase = admin.try_wait_result(b).unwrap().phase;
        assert!(phase == "done" || phase == "expired", "{phase}");
    }

    // Heal point: every fault cap is spent, nothing left to inject.
    assert!(plan.spent(), "storm must be over: {plan:?}");

    // End-state invariants.
    let unique: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "no duplicated job ids: {ids:?}");
    for &id in &ids {
        let record = srv.state().registry.get(id).expect("no lost jobs");
        assert!(record.phase().is_terminal(), "job {id} not terminal");
    }
    poll_until("workers restored", Duration::from_secs(5), || {
        srv.state().pool.live_workers() == WORKERS
    });
    poll_until(
        "health ok",
        Duration::from_secs(5),
        || matches!(admin.health(), Ok((status, reasons)) if status == "ok" && reasons.is_empty()),
    );
    let gauges = srv.state().pool.gauges();
    assert_eq!(
        gauges.worker_restarts,
        plan.injected(FaultSite::WorkerKill),
        "{gauges:?}"
    );
    assert_eq!(
        pool_obs().unit_panics.get() - panics0,
        plan.injected(FaultSite::UnitPanic)
    );
    assert_eq!(pool_obs().quarantined_jobs.get() - quarantined0, 1);
    assert_eq!(
        net_obs().wal_errors.get() - wal_errors0,
        plan.injected(FaultSite::WalFsync)
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
