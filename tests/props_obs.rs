//! Property-based tests on the `dabs-obs` histogram under concurrency:
//! recorder threads race a snapshotting reader through arbitrary
//! interleavings, and no snapshot may ever present an inconsistent view.
//!
//! A mid-race snapshot is documented as a *consistent lower bound* — the
//! scalar fields (`sum`, `min`, `max`) are read from separate atomics and
//! may lag or lead the bucket counts, so only the bucket-derived facts are
//! asserted while recorders run; the exact-value facts are asserted once
//! the histogram is quiescent.

use dabs::obs::{LogHistogram, HIST_BUCKETS};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_record_vs_snapshot_interleavings_stay_consistent(
        values in proptest::collection::vec(0u64..1_000_000, 1..400),
        threads in 1usize..5,
    ) {
        let hist = Arc::new(LogHistogram::new());
        let total = values.len() as u64;
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let exact_sum: u64 = values.iter().sum();

        let chunk = values.len().div_ceil(threads);
        let recorders: Vec<_> = values
            .chunks(chunk)
            .map(|slice| {
                let hist = Arc::clone(&hist);
                let slice = slice.to_vec();
                std::thread::spawn(move || {
                    for v in slice {
                        hist.record(v);
                    }
                })
            })
            .collect();

        // Reader: snapshot in a tight loop until every observation has
        // landed. Each snapshot must be a superset of the previous one
        // (per-bucket monotone) and internally ordered.
        let mut last_buckets = vec![0u64; HIST_BUCKETS];
        loop {
            let s = hist.snapshot();
            let count = s.count();
            prop_assert!(count <= total, "snapshot invented observations");
            for (now, before) in s.buckets().iter().zip(&last_buckets) {
                prop_assert!(now >= before, "a bucket count went backwards");
            }
            if count > 0 {
                prop_assert!(s.p50() <= s.p99(), "percentiles out of order");
                prop_assert!(s.p99() <= s.p999(), "percentiles out of order");
            }
            last_buckets = s.buckets().to_vec();
            if count == total {
                break;
            }
            std::thread::yield_now();
        }
        for r in recorders {
            r.join().expect("recorder thread");
        }

        // Quiescent: every scalar is exact again.
        let fin = hist.snapshot();
        prop_assert_eq!(fin.count(), total);
        prop_assert_eq!(fin.sum(), exact_sum);
        prop_assert_eq!(fin.min(), Some(lo));
        prop_assert_eq!(fin.max(), Some(hi));
        prop_assert!(fin.p999() <= hi);
    }
}
