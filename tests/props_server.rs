//! Property-based tests of the server's durable job log: WAL records must
//! survive an encode → parse round trip exactly, for arbitrary job specs
//! and terminal outcomes — the replay path trusts this bijection.

use dabs::server::{ExecMode, JobPhase, JobSpec, ProblemSpec, Wal, WalRecord};
use proptest::prelude::*;

/// Derive a full [`JobSpec`] from three unconstrained words: every bit of
/// the spec — kind, sizes, mode, optional fields, tenant, idempotency key
/// — is a deterministic function of the draw, covering the whole shape
/// space without a combinatorial strategy tuple.
fn spec_from_words(a: u64, b: u64, c: u64) -> JobSpec {
    let kinds = ["random", "k2000", "g22", "tai"];
    let opt = |bit: u64, v: u64| if bit & 1 == 1 { Some(v) } else { None };
    JobSpec {
        problem: ProblemSpec {
            kind: kinds[(a % 4) as usize].to_string(),
            n: opt(a >> 2, 4 + (a >> 3) % 512).map(|v| v as usize),
            seed: b,
            ..ProblemSpec::random(8, 1)
        },
        devices: 1 + (a >> 13) as usize % 8,
        blocks: 1 + (a >> 17) as usize % 4,
        seed: c,
        abs: a >> 20 & 1 == 1,
        mode: if a >> 21 & 1 == 1 {
            ExecMode::Threaded
        } else {
            ExecMode::Sequential
        },
        target: opt(a >> 22, b % 2_000_000).map(|v| v as i64 - 1_000_000),
        time_ms: None,
        max_batches: opt(a >> 23, 1 + b % 100_000),
        priority: (a >> 24) as i32 % 10 - 5,
        deadline_unix_ms: opt(a >> 29, 1 + c % (u64::MAX / 2)),
        units: opt(a >> 30, 1 + c % 63).map(|v| v as u32),
        lanes: None,
        tenant: opt(a >> 31, 0).map(|_| format!("tenant-{}", b % 97)),
        idempotency_key: opt(a >> 32, 0).map(|_| format!("key-{:x}-{:x}", b, c % 1_000)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Serialized u64 fields (ids, seeds) stay within i64::MAX: the JSON
    // wire stores integers as i64, and real ids are small sequential
    // values — the strategy documents the wire's numeric domain.
    #[test]
    fn admit_records_round_trip_exactly(
        job in 0u64..=i64::MAX as u64,
        a in any::<u64>(),
        b in 0u64..=i64::MAX as u64,
        c in 0u64..=i64::MAX as u64,
    ) {
        let spec = spec_from_words(a, b, c);
        let rec = WalRecord::Admit { job, spec: spec.clone() };
        let line = rec.encode();
        prop_assert!(!line.contains('\n'), "records are single lines");
        let back = WalRecord::parse_line(&line).expect("own encoding must parse");
        match back {
            WalRecord::Admit { job: j, spec: s } => {
                prop_assert_eq!(j, job);
                // Every replay-relevant field survives.
                prop_assert_eq!(&s.problem.kind, &spec.problem.kind);
                prop_assert_eq!(s.problem.n, spec.problem.n);
                prop_assert_eq!(s.problem.seed, spec.problem.seed);
                prop_assert_eq!(s.devices, spec.devices);
                prop_assert_eq!(s.blocks, spec.blocks);
                prop_assert_eq!(s.seed, spec.seed);
                prop_assert_eq!(s.abs, spec.abs);
                prop_assert_eq!(s.mode, spec.mode);
                prop_assert_eq!(s.target, spec.target);
                prop_assert_eq!(s.max_batches, spec.max_batches);
                prop_assert_eq!(s.priority, spec.priority);
                prop_assert_eq!(s.deadline_unix_ms, spec.deadline_unix_ms);
                prop_assert_eq!(s.units, spec.units);
                prop_assert_eq!(&s.tenant, &spec.tenant);
                prop_assert_eq!(&s.idempotency_key, &spec.idempotency_key);
            }
            other => prop_assert!(false, "wrong variant back: {:?}", other),
        }
    }

    #[test]
    fn terminal_records_round_trip_exactly(
        job in 0u64..=i64::MAX as u64,
        which in 0u64..4,
        err_word in any::<u64>(),
    ) {
        let phase = [
            JobPhase::Done,
            JobPhase::Cancelled,
            JobPhase::Expired,
            JobPhase::Failed,
        ][which as usize];
        let error = if err_word & 1 == 1 {
            Some(format!("unit failed: code {:#x} \"quoted\" \\slash", err_word))
        } else {
            None
        };
        let rec = WalRecord::Terminal { job, phase, result: None, error: error.clone() };
        let back = WalRecord::parse_line(&rec.encode()).expect("own encoding must parse");
        match back {
            WalRecord::Terminal { job: j, phase: p, error: e, result } => {
                prop_assert_eq!(j, job);
                prop_assert_eq!(p, phase);
                prop_assert_eq!(&e, &error);
                prop_assert!(result.is_none());
            }
            other => prop_assert!(false, "wrong variant back: {:?}", other),
        }
    }

    // A crash at the compaction boundary is the WAL's nastiest moment: the
    // old log may end in a torn record AND a half-written `jobs.wal.tmp`
    // from the interrupted rewrite is still on disk. Reopen must replay
    // from the old log only — every retained terminal and every unfinished
    // admit survives, the stale tmp is discarded, and the compaction that
    // reopen performs leaves a log that replays cleanly.
    #[test]
    fn compaction_boundary_crash_preserves_retained_state(
        seed in any::<u64>(),
        n_term in 1usize..6,
        n_live in 1usize..6,
        cut_word in any::<u64>(),
        tmp_garbage in collection::vec(any::<u8>(), 0..120),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "dabs-props-compact-{}-{seed:x}-{n_term}-{n_live}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Compacted shape: terminal pairs first, then live admits. Job 1 is
        // quarantined — that mark must also ride out the crash.
        let mut raw = String::new();
        for id in 1..=n_term as u64 {
            raw.push_str(&WalRecord::Admit { job: id, spec: spec_from_words(seed ^ id, id, 3) }.encode());
            raw.push('\n');
            raw.push_str(&WalRecord::Terminal { job: id, phase: JobPhase::Done, result: None, error: None }.encode());
            raw.push('\n');
        }
        raw.push_str(&WalRecord::Quarantine { job: 1 }.encode());
        raw.push('\n');
        for k in 0..n_live as u64 {
            let job = n_term as u64 + 1 + k;
            raw.push_str(&WalRecord::Admit { job, spec: spec_from_words(seed ^ job, job, 5) }.encode());
            raw.push('\n');
        }
        // Crash mid-append: a partial record with no newline at the tail.
        let torn = WalRecord::Admit { job: 99, spec: spec_from_words(7, 8, 9) }.encode();
        let cut = 1 + (cut_word as usize) % (torn.len() - 1);
        std::fs::write(dir.join("jobs.wal"), format!("{raw}{}", &torn[..cut])).unwrap();
        // Crash mid-compaction: the half-written tmp is still on disk.
        std::fs::write(dir.join("jobs.wal.tmp"), &tmp_garbage).unwrap();
        {
            let (_wal, replay) = Wal::open(&dir).unwrap();
            prop_assert_eq!(replay.terminals.len(), n_term);
            prop_assert_eq!(replay.live.len(), n_live);
            prop_assert_eq!(replay.max_job_id, (n_term + n_live) as u64);
            prop_assert!(replay.truncated_bytes > 0, "torn tail must be measured");
            prop_assert_eq!(&replay.quarantined, &vec![1]);
        }
        let (_wal, replay) = Wal::open(&dir).unwrap();
        prop_assert_eq!(replay.truncated_bytes, 0, "reopened log replays cleanly");
        prop_assert_eq!(replay.terminals.len(), n_term);
        prop_assert_eq!(replay.live.len(), n_live);
        prop_assert_eq!(&replay.quarantined, &vec![1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_lines_never_panic_the_parser(words in collection::vec(any::<u8>(), 0..200)) {
        // Torn tails and corrupt bytes reach this parser on every restart;
        // it must reject or accept, never panic.
        let line = String::from_utf8_lossy(&words).into_owned();
        let _ = WalRecord::parse_line(&line);
        // Prefixes of a valid record (the torn-write shape) likewise.
        let valid = WalRecord::Admit { job: 7, spec: spec_from_words(1, 2, 3) }.encode();
        let cut = (words.first().copied().unwrap_or(0) as usize) % valid.len();
        let _ = WalRecord::parse_line(&valid[..cut]);
    }
}
