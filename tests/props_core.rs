//! Property-based tests on the GA layer: genetic operations, adaptive
//! selection, and the island ring.

use dabs::core::{
    generate_target, select_algorithm, select_operation, DabsConfig, GeneticOp, IslandRing,
    PoolEntry, SolutionPool,
};
use dabs::model::Solution;
use dabs::rng::Xorshift64Star;
use dabs::search::MainAlgorithm;
use proptest::prelude::*;

fn filled_pool(n: usize, rows: usize, seed: u64) -> SolutionPool {
    let mut pool = SolutionPool::new(rows, false);
    let mut rng = Xorshift64Star::new(seed);
    pool.fill_random(n, &MainAlgorithm::ALL, &GeneticOp::DABS, &mut rng);
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_operation_produces_correct_length(
        n in 2usize..200,
        op_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        let op = GeneticOp::DABS[op_idx];
        let pool = filled_pool(n, 5, seed);
        let neighbor = filled_pool(n, 5, seed ^ 1);
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(seed ^ 2);
        let child = generate_target(op, &pool, Some(&neighbor), n, &config, &mut rng);
        prop_assert_eq!(child.len(), n);
    }

    #[test]
    fn selection_always_returns_portfolio_members(
        seed in any::<u64>(),
        algos_mask in 1u8..32,
        ops_mask in 1u16..256,
    ) {
        // arbitrary non-empty sub-portfolios
        let algorithms: Vec<MainAlgorithm> = MainAlgorithm::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| (algos_mask >> i) & 1 == 1)
            .map(|(_, a)| a)
            .collect();
        let operations: Vec<GeneticOp> = GeneticOp::DABS
            .into_iter()
            .enumerate()
            .filter(|(i, _)| (ops_mask >> i) & 1 == 1)
            .map(|(_, o)| o)
            .collect();
        prop_assume!(!algorithms.is_empty() && !operations.is_empty());
        let config = DabsConfig {
            algorithms: algorithms.clone(),
            operations: operations.clone(),
            ..DabsConfig::default()
        };
        // pool rows recorded with arbitrary (possibly out-of-portfolio) pairs
        let pool = filled_pool(32, 8, seed);
        let mut rng = Xorshift64Star::new(seed ^ 3);
        for _ in 0..50 {
            let a = select_algorithm(&pool, &config, &mut rng);
            let o = select_operation(&pool, &config, &mut rng);
            prop_assert!(config.algorithms.contains(&a));
            prop_assert!(config.operations.contains(&o));
        }
    }

    #[test]
    fn mutation_distance_is_binomial_scale(
        n in 64usize..512,
        seed in any::<u64>(),
    ) {
        // With p = 1/8, hamming(child, parent) concentrates near n/8;
        // a 6-sigma band keeps this robust for any seed.
        let pool = filled_pool(n, 3, seed);
        let config = DabsConfig::default();
        let mut rng = Xorshift64Star::new(seed ^ 4);
        let parent0 = pool.entry(0).solution.clone();
        let child = generate_target(GeneticOp::Best, &pool, None, n, &config, &mut rng);
        prop_assert_eq!(&child, &parent0, "Best must clone the pool best");

        let mut total = 0usize;
        let reps = 8;
        for _ in 0..reps {
            let child = generate_target(GeneticOp::Mutation, &pool, None, n, &config, &mut rng);
            // parent is *some* pool row; distance to the nearest row is what
            // mutation bounds
            let dmin = (0..pool.len())
                .map(|k| child.hamming(&pool.entry(k).solution))
                .min()
                .unwrap();
            total += dmin;
        }
        let mean = total as f64 / reps as f64;
        let expect = n as f64 / 8.0;
        let sigma = (n as f64 * 0.125 * 0.875).sqrt();
        prop_assert!(
            (mean - expect).abs() < 6.0 * sigma,
            "mean mutation distance {mean}, expected ≈ {expect}"
        );
    }

    #[test]
    fn island_ring_neighbors_partition_correctly(count in 1usize..9) {
        let ring = IslandRing::new(count, 4, false);
        for i in 0..count {
            let nb = ring.neighbor_index(i);
            prop_assert!(nb < count);
            if count == 1 {
                prop_assert_eq!(nb, i);
            } else {
                prop_assert_ne!(nb, i);
                prop_assert_eq!(nb, (i + 1) % count);
            }
        }
    }

    #[test]
    fn pool_insert_keeps_best_k_under_random_streams(
        stream in proptest::collection::vec((-500i64..500, any::<u64>()), 1..80),
        capacity in 1usize..10,
    ) {
        let mut pool = SolutionPool::new(capacity, false);
        for (e, s) in &stream {
            let mut rng = Xorshift64Star::new(*s);
            pool.insert(PoolEntry {
                solution: Solution::random(24, &mut rng),
                energy: *e,
                algorithm: MainAlgorithm::MaxMin,
                operation: GeneticOp::Random,
            });
        }
        let mut energies: Vec<i64> = stream.iter().map(|(e, _)| *e).collect();
        energies.sort_unstable();
        let kept: Vec<i64> = pool.iter().map(|p| p.energy).collect();
        prop_assert_eq!(kept, energies.into_iter().take(pool.len()).collect::<Vec<_>>());
    }
}
