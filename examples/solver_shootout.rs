//! Shootout: every solver in the repository on one instance.
//!
//! Runs DABS, the ABS baseline, simulated annealing, the hybrid portfolio,
//! branch-and-bound and discrete simulated bifurcation on a G39-class
//! sparse MaxCut instance with equal wall-clock budgets.
//!
//! ```sh
//! cargo run --release --example solver_shootout [-- n seed budget_ms]
//! ```

use dabs::baselines::bnb::{BnbConfig, BranchAndBound};
use dabs::baselines::hybrid::{HybridConfig, HybridSolver};
use dabs::baselines::sa::{SaConfig, SimulatedAnnealing};
use dabs::baselines::sb::{SbConfig, SimulatedBifurcation};
use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::gset;
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(250);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let budget_ms: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_500);
    let budget = Duration::from_millis(budget_ms);

    let problem = gset::g39_like(n, n * 3, seed);
    let model = Arc::new(problem.to_qubo());
    println!(
        "instance {} — {} nodes, {} edges, budget {budget:?}\n",
        problem.name,
        problem.n(),
        problem.edge_count()
    );
    println!("{:<22} {:>10} {:>10}", "solver", "energy", "cut");
    println!("{}", "-".repeat(44));
    let report = |name: &str, energy: i64| {
        println!("{name:<22} {energy:>10} {:>10}", -energy);
    };

    let mut cfg = DabsConfig::dabs(4, 2);
    cfg.params = SearchParams::maxcut();
    cfg.seed = seed;
    let r = DabsSolver::new(cfg)
        .unwrap()
        .run(&model, Termination::time(budget));
    report("DABS", r.energy);

    let mut abs = DabsConfig::abs_baseline(4, 2);
    abs.params = SearchParams::maxcut();
    abs.seed = seed;
    let r = DabsSolver::new(abs)
        .unwrap()
        .run(&model, Termination::time(budget));
    report("ABS (baseline)", r.energy);

    let r = SimulatedAnnealing::new(SaConfig::scaled_to(&model, 3_000, seed)).solve(&model);
    report("simulated annealing", r.energy);

    let r = HybridSolver::new(HybridConfig {
        time_limit: budget,
        seed,
        ..HybridConfig::default()
    })
    .solve(&model);
    report("hybrid portfolio", r.energy);

    let r = BranchAndBound::new(BnbConfig {
        time_limit: budget,
        heuristic_restarts: 16,
        seed,
    })
    .solve(&model);
    report("branch & bound", r.energy);

    let (ising, c) = model.to_ising();
    let r = SimulatedBifurcation::new(SbConfig {
        steps: 8_000,
        seed,
        ..SbConfig::default()
    })
    .solve(&ising);
    report("discrete SB", (r.energy + c) / 4);
}
