//! QAP via one-hot QUBO encoding (paper §II-B / §VI-B).
//!
//! Generates a nug-class grid QAP, reduces it with a penalty, solves with
//! DABS (s = 0.1, b = 1), decodes the one-hot solution back into a
//! facility→location assignment and verifies the paper's
//! `E(X) = C(g) − n·p` identity.
//!
//! ```sh
//! cargo run --release --example qap_assignment [-- side seed budget_ms]
//! ```

use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::qaplib;
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_000);

    let qap = qaplib::nug_like(side, side, seed);
    let n = qap.n();
    let penalty = qap.auto_penalty();
    println!("instance {} — n = {n}, penalty = {penalty}", qap.name);

    let model = Arc::new(qap.to_qubo(penalty));
    println!(
        "QUBO: {} bits, {} quadratic terms",
        model.n(),
        model.edge_count()
    );

    let mut config = DabsConfig::dabs(4, 2);
    config.params = SearchParams::qap_qasp(); // paper: s = 0.1, b = 1
    config.seed = seed;
    let solver = DabsSolver::new(config).expect("valid config");
    let result = solver.run(&model, Termination::time(Duration::from_millis(budget)));

    println!("energy  : {}", result.energy);
    match qap.decode(&result.best) {
        Some(assignment) => {
            let cost = qap.cost(&assignment);
            println!("feasible: yes");
            println!("g       : {assignment:?}  (facility i → location g[i])");
            println!("cost    : {cost}");
            println!(
                "identity: E = C − n·p ⇒ {} = {} − {}·{} ✓",
                result.energy, cost, n, penalty
            );
            assert_eq!(result.energy, cost - (n as i64) * penalty);
        }
        None => {
            println!("feasible: NO — raise the penalty or the budget");
        }
    }
    println!(
        "TTS     : {:.3}s, batches {}, flips {}",
        result.time_to_best.as_secs_f64(),
        result.batches,
        result.flips
    );
}
