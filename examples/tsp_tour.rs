//! TSP through the QAP reduction (paper §II-B: "the TSP can be solved by a
//! QAP algorithm by setting a circular logistic flow of the facilities").
//!
//! Generates random cities, reduces TSP → QAP → one-hot QUBO, solves with
//! DABS, and decodes the tour.
//!
//! ```sh
//! cargo run --release --example tsp_tour [-- cities seed budget_ms]
//! ```

use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::TspInstance;
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let cities: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_000);

    let tsp = TspInstance::random_euclidean(cities, 100, seed);
    println!("instance {} — {cities} cities", tsp.name);

    // TSP → QAP: flow = directed cycle over tour positions
    let qap = tsp.to_qap();
    let penalty = qap.auto_penalty();
    let model = Arc::new(qap.to_qubo(penalty));
    println!(
        "QAP→QUBO: {} bits, {} terms, penalty {penalty}",
        model.n(),
        model.edge_count()
    );

    let mut config = DabsConfig::dabs(4, 2);
    config.params = SearchParams::qap_qasp();
    config.seed = seed;
    let solver = DabsSolver::new(config).expect("valid config");
    let result = solver.run(&model, Termination::time(Duration::from_millis(budget)));

    match qap.decode(&result.best) {
        Some(tour) => {
            // assignment g: tour position k → city g[k]
            let length = tsp.tour_length(&tour);
            println!("tour    : {tour:?}");
            println!("length  : {length}");
            assert_eq!(
                qap.cost(&tour),
                length,
                "QAP cost must equal tour length (reduction invariant)"
            );
            assert_eq!(result.energy, length - (cities as i64) * penalty);
            println!(
                "TTS     : {:.3}s, batches {}",
                result.time_to_best.as_secs_f64(),
                result.batches
            );
        }
        None => println!("no feasible tour found within budget — increase budget_ms"),
    }
}
