//! MaxCut on a K2000-class graph (paper §VI-A), scaled to run in seconds.
//!
//! Generates a random complete ±1 graph, reduces it to a QUBO with
//! `E(X) = −cut(X)`, solves it with DABS under the paper's MaxCut
//! parameters (s = 0.1, b = 10), and reports the cut.
//!
//! ```sh
//! cargo run --release --example maxcut_k2000 [-- n seed budget_ms]
//! ```

use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::gset;
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);

    let problem = gset::k2000_like(n, seed);
    println!(
        "instance {} — {} nodes, {} edges",
        problem.name,
        problem.n(),
        problem.edge_count()
    );

    let model = Arc::new(problem.to_qubo());
    let mut config = DabsConfig::dabs(4, 2);
    config.params = SearchParams::maxcut(); // paper: s = 0.1, b = 10
    config.seed = seed;

    let solver = DabsSolver::new(config).expect("valid config");
    let result = solver.run(&model, Termination::time(Duration::from_millis(budget)));

    let cut = problem.cut_value(&result.best);
    println!("energy  : {}", result.energy);
    println!("cut     : {cut} (energy = −cut: {})", -result.energy == cut);
    println!(
        "TTS     : {:.3}s of {:.3}s budget",
        result.time_to_best.as_secs_f64(),
        result.elapsed.as_secs_f64()
    );
    println!("batches : {}, flips: {}", result.batches, result.flips);
    println!("upper bound on any cut: {}", problem.positive_weight());
    assert_eq!(-result.energy, cut, "MaxCut reduction invariant");
}
