//! QASP: simulating a quantum annealer's benchmark workload (paper §II-C /
//! §VI-C).
//!
//! Builds a Pegasus-like working graph, generates random Ising models at
//! three resolutions, and compares DABS against the analog-annealer
//! simulator on each — reproducing the Table IV trend that the annealer's
//! gap grows with resolution while DABS is unaffected.
//!
//! ```sh
//! cargo run --release --example annealer_simulation [-- seed budget_ms]
//! ```

use dabs::baselines::annealer::{AnalogAnnealer, AnnealerConfig};
use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::problems::{QaspInstance, Topology};
use dabs::search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);

    let topology = Topology::pegasus_like(8, 8, 14.0, seed).with_faults(500, 3_500, seed);
    println!(
        "topology {} — {} qubits, {} couplers",
        topology.name,
        topology.n(),
        topology.edge_count()
    );

    println!(
        "\n{:<8} {:>12} {:>12} {:>12} {:>10}",
        "QASP", "DABS E", "annealer E", "gap", "gap %"
    );
    println!("{}", "-".repeat(60));

    for resolution in [1i64, 16, 256] {
        let instance = QaspInstance::generate(&topology, resolution, seed + resolution as u64);
        let model = Arc::new(instance.qubo().clone());

        let mut config = DabsConfig::dabs(4, 2);
        config.params = SearchParams::qap_qasp();
        config.seed = seed;
        let solver = DabsSolver::new(config).expect("valid config");
        let dabs = solver.run(&model, Termination::time(Duration::from_millis(budget)));

        let annealer = AnalogAnnealer::new(AnnealerConfig {
            num_reads: 200,
            sweeps_per_read: 10,
            noise_sigma: 0.02,
            seed,
            ..AnnealerConfig::default()
        })
        .sample(instance.ising());
        // annealer reports the Hamiltonian; convert to QUBO energy
        let annealer_energy = annealer.energy - instance.offset();

        let gap = annealer_energy - dabs.energy;
        let gap_pct = 100.0 * gap as f64 / dabs.energy.abs().max(1) as f64;
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>9.3}%",
            format!("r={resolution}"),
            dabs.energy,
            annealer_energy,
            gap,
            gap_pct
        );
    }
    println!("\nexpected shape (paper Table IV): the annealer misses the potentially");
    println!("optimal solution at every resolution (gap > 0) while DABS reaches it;");
    println!("its fixed analog noise floor corrupts fine-grained couplings more as");
    println!("resolution grows (see the relative-corruption test in dabs-baselines).");
}
