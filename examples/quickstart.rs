//! Quickstart: build a QUBO, solve it with DABS, read the answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dabs::core::{DabsConfig, DabsSolver, Termination};
use dabs::model::QuboBuilder;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A tiny portfolio-style QUBO: pick items to minimise
    //   E(X) = Σ cost_i x_i + Σ clash_ij x_i x_j
    // negative "costs" are rewards; positive pair weights are conflicts.
    let costs = [-5i64, -4, -3, -6, -2, -4, -3, -5];
    let clashes = [
        (0usize, 1usize, 7i64),
        (2, 3, 6),
        (4, 5, 5),
        (6, 7, 6),
        (0, 3, 4),
    ];

    let mut builder = QuboBuilder::new(costs.len());
    for (i, &c) in costs.iter().enumerate() {
        builder.add_linear(i, c);
    }
    for &(i, j, w) in &clashes {
        builder.add_quadratic(i, j, w);
    }
    let model = Arc::new(builder.build().expect("valid model"));

    // Solve with the default DABS configuration (4 virtual devices).
    let solver = DabsSolver::new(DabsConfig::default()).expect("valid config");
    let result = solver.run(
        &model,
        Termination::time(Duration::from_millis(200)).with_target(-19),
    );

    println!("energy : {}", result.energy);
    println!("vector : {:?}", result.best);
    println!("picked : {:?}", result.best.iter_ones().collect::<Vec<_>>());
    println!("batches: {}, flips: {}", result.batches, result.flips);
    if let Some((algo, op)) = result.first_finder {
        println!("found by {} after a {} target", algo.name(), op.name());
    }

    // The energy of the returned vector always matches the model.
    assert_eq!(model.energy(&result.best), result.energy);
}
